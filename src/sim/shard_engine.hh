/**
 * @file
 * Sharded intra-run parallel execution engine.
 *
 * The system is partitioned by mesh tile: each tile's components
 * (CU/CPU core, L1/stash, LLC bank, DMA) schedule exclusively on
 * their own pooled calendar EventQueue.  All tiles advance in
 * lock-step quanta whose length is the NoC's minimum cross-tile
 * latency (conservative lookahead, MeshParams::minLatencyTicks());
 * within a quantum no tile can observe another tile's sends, so the
 * tiles' event executions are independent and a worker pool may run
 * them concurrently.  At each quantum barrier the last-arriving
 * worker — alone, with every other worker parked — flushes the
 * Fabric's cross-tile mailboxes in canonical order and picks the next
 * quantum.  See DESIGN.md section 10 for why this preserves the
 * serial determinism contract bit-for-bit, and section 16 for the
 * per-quantum hot-path and wall-clock accounting described below.
 *
 * With one tile the engine degenerates to the serial kernel: drain()
 * is a single unbounded run() on the one queue and no barrier or
 * worker threads exist.
 */

#ifndef STASHSIM_SIM_SHARD_ENGINE_HH
#define STASHSIM_SIM_SHARD_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace stashsim
{

/**
 * Sense-reversing central barrier whose last arriver runs a
 * completion function inline before releasing the others.
 *
 * std::barrier's completion must be noexcept; ours may throw (the
 * flush can hit a protocol fatal()), so the caller wraps it and we
 * only require that the wrapped call returns.  Waiters spin briefly
 * then block on the generation word (futex-backed atomic wait), which
 * keeps the barrier correct and cheap even on a single hardware
 * thread.
 *
 * arriveAndWait() is templated on the completion callable so the
 * per-quantum path never materializes a std::function: the engine
 * passes a captureless-or-one-pointer lambda and the call inlines.
 */
class QuantumBarrier
{
  public:
    explicit QuantumBarrier(unsigned parties) : _parties(parties) {}

    /**
     * Arrives; the last arriver runs @p on_last (must not throw),
     * then everyone proceeds.  Writes made by @p on_last
     * happen-before every waiter's return.
     */
    template <typename OnLast>
    void
    arriveAndWait(OnLast &&on_last)
    {
        const std::uint64_t gen =
            generation.load(std::memory_order_acquire);
        if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            _parties) {
            std::forward<OnLast>(on_last)();
            arrived.store(0, std::memory_order_relaxed);
            generation.fetch_add(1, std::memory_order_release);
            generation.notify_all();
            return;
        }
        for (int spins = 0;
             generation.load(std::memory_order_acquire) == gen;
             ++spins) {
            if (spins < 64)
                std::this_thread::yield();
            else
                generation.wait(gen, std::memory_order_acquire);
        }
    }

    /**
     * Changes the party count.  Legal only while no thread is inside
     * arriveAndWait() — i.e. between drains; the engine's
     * setThreads() is the only caller.
     */
    void
    reset(unsigned parties)
    {
        _parties = parties;
        arrived.store(0, std::memory_order_relaxed);
    }

    unsigned parties() const { return _parties; }

  private:
    unsigned _parties;
    std::atomic<unsigned> arrived{0};
    std::atomic<std::uint64_t> generation{0};
};

/** One worker's host-time split of the drain loop (cumulative ns). */
struct ShardLane
{
    std::uint64_t execNs = 0;        //!< inside EventQueue::run
    std::uint64_t barrierWaitNs = 0; //!< arrival to barrier release
};

/**
 * Host wall-clock breakdown of the engine's drain loop, cumulative
 * over the engine's lifetime.  Serial engines report execNs only
 * (there is no barrier, and the Fabric's event-driven flushes ride
 * inside execNs).  For the last arriver at each barrier the
 * flush/hook time is part of its barrierWaitNs lane; flushNs reports
 * the flush alone, measured separately, so it is a subset of the
 * lanes' barrier-wait total, not an addition to it.
 */
struct EngineBreakdown
{
    std::uint64_t execNs = 0;        //!< sum over lanes
    std::uint64_t barrierWaitNs = 0; //!< sum over lanes
    std::uint64_t flushNs = 0;       //!< inside the barrier flush fn
    std::uint64_t quanta = 0;        //!< barriers crossed
    std::vector<ShardLane> lanes;    //!< per-worker split
};

/**
 * Owns the per-tile event queues and the quantum-stepped drain loop.
 */
class ShardEngine
{
  public:
    struct Options
    {
        unsigned tiles = 1;   //!< one event queue per mesh tile
        unsigned threads = 1; //!< worker threads (<= tiles)
        /** Quantum length: the NoC's minimum cross-tile latency. */
        Tick lookahead = 0;
    };

    /** Flushes cross-tile mailboxes; runs with all workers parked. */
    using FlushFn = std::function<void()>;
    /** Observes each quantum boundary (watchdog); same context. */
    using BarrierHook = std::function<void(Tick quantum_end)>;

    explicit ShardEngine(const Options &opts);

    /** True when running the serial (single-queue, no-barrier) path. */
    bool serial() const { return opts.tiles == 1; }

    unsigned numTiles() const { return opts.tiles; }
    unsigned numThreads() const { return opts.threads; }
    Tick lookahead() const { return opts.lookahead; }

    /**
     * Retunes the worker count for subsequent drains (the --shards 0
     * auto-tuner's knob).  Clamped to [1, tiles]; legal only between
     * drains.  The tile partition and every queue are untouched, so
     * the simulated outcome is unchanged — only the worker pool size.
     */
    void setThreads(unsigned n);

    /** The queue tile @p tile's components schedule on. */
    EventQueue &queue(unsigned tile) { return *queues[tile]; }
    const EventQueue &queue(unsigned tile) const { return *queues[tile]; }

    /**
     * Runs until every queue is globally drained.  Serial: one
     * unbounded run() ( @p flush may be null; event-driven flushing
     * is the Fabric's job).  Sharded: lock-step quanta with @p flush
     * (and @p hook, if any) at every barrier, then every queue's
     * clock is aligned to the global last-event tick so
     * controller-context code sees one coherent time.  A worker
     * exception (fatal(), protocol violation) parks the fleet,
     * normalizes time, and rethrows on this thread.
     */
    void drain(const FlushFn &flush, const BarrierHook &hook);

    /** Coherent global time; valid between drains. */
    Tick now() const { return queues[0]->curTick(); }

    /** Model events executed across all tiles (excludes PriInternal). */
    std::uint64_t eventsExecuted() const;

    /** Pending events across all tiles. */
    std::size_t totalPending() const;

    /** @{ Aggregated queue-shape counters (see EventQueue). */
    std::size_t peakLiveEvents() const;  //!< max over tiles
    std::size_t poolChunksAllocated() const; //!< sum over tiles
    std::uint64_t wheelInserts() const;  //!< sum over tiles
    std::uint64_t farInserts() const;    //!< sum over tiles
    /** @} */

    /** Quantum barriers crossed over the engine's lifetime. */
    std::uint64_t quantaExecuted() const { return _quanta; }

    /** Cumulative wall-clock split of every drain so far. */
    EngineBreakdown breakdown() const;

  private:
    void workerLoop(unsigned w);
    void onBarrier();
    void computeNextQuantum();
    void normalizeTimes();

    Options opts;
    /** unique_ptr: EventQueue is non-movable; the array is fixed. */
    std::vector<std::unique_ptr<EventQueue>> queues;

    QuantumBarrier barrier;

    /**
     * Quantum state.  Written only by the barrier completion (or the
     * controller before workers start) and read by workers after the
     * barrier release, which provides the ordering.
     */
    Tick qEnd = 0;
    bool done = false;

    /**
     * The current drain's flush/hook, captured once at drain() entry
     * so the per-quantum barrier lambda carries a single `this`
     * pointer — no std::function is constructed per arrival.  Same
     * publication rule as qEnd: written before workers start.
     */
    const FlushFn *curFlush = nullptr;
    const BarrierHook *curHook = nullptr;

    std::atomic<bool> errorFlag{false};
    std::vector<std::exception_ptr> workerErrors;
    std::exception_ptr controlError;

    std::uint64_t _quanta = 0;
    std::uint64_t _flushNs = 0; //!< barrier-context flush time

    /**
     * Per-worker wall-clock lanes, cache-line padded, sized one per
     * tile (the max worker count).  Each worker accumulates into
     * locals and folds into its lane right before workerLoop returns;
     * the controller reads only after join(), so no synchronization
     * beyond the thread join is needed.
     */
    struct alignas(64) PaddedLane
    {
        std::uint64_t execNs = 0;
        std::uint64_t barrierWaitNs = 0;
    };
    std::vector<PaddedLane> lanes;
};

} // namespace stashsim

#endif // STASHSIM_SIM_SHARD_ENGINE_HH
