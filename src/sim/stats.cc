#include "sim/stats.hh"

namespace stashsim
{

const char *
msgClassName(MsgClass c)
{
    switch (c) {
      case MsgClass::Read:
        return "read";
      case MsgClass::Write:
        return "write";
      case MsgClass::Writeback:
        return "writeback";
      default:
        return "?";
    }
}

std::map<std::string, double>
SystemStats::flatten() const
{
    std::map<std::string, double> m;
    visitGroups(*this, [&m](const char *prefix, const auto &group) {
        using S = std::remove_cv_t<
            std::remove_reference_t<decltype(group)>>;
        S::visit(group,
                 [&m, prefix](const char *name, const Counter &c) {
                     m[std::string(prefix) + "." + name] = double(c);
                 });
    });
    // Derived totals the legacy flatten() exported, kept under their
    // historical names.
    m["gpuL1.hits"] = double(gpuL1.hits());
    m["gpuL1.misses"] = double(gpuL1.misses());
    m["gpuL1.accesses"] = double(gpuL1.accesses());
    m["cpuL1.hits"] = double(cpuL1.hits());
    m["cpuL1.misses"] = double(cpuL1.misses());
    m["cpuL1.accesses"] = double(cpuL1.accesses());
    m["scratch.accesses"] = double(scratch.accesses());
    m["stash.hits"] = double(stash.hits());
    m["stash.misses"] = double(stash.misses());
    m["stash.accesses"] = double(stash.accesses());
    m["noc.flitHops.total"] = double(noc.totalFlitHops());
    m["sim.gpuCycles"] = double(gpuCycles);
    m["sim.numGpuCus"] = double(numGpuCus);
    return m;
}

} // namespace stashsim
