#include "sim/stats.hh"

namespace stashsim
{

const char *
msgClassName(MsgClass c)
{
    switch (c) {
      case MsgClass::Read:
        return "read";
      case MsgClass::Write:
        return "write";
      case MsgClass::Writeback:
        return "writeback";
      default:
        return "?";
    }
}

std::map<std::string, double>
SystemStats::flatten() const
{
    std::map<std::string, double> m;
    m["gpu.instructions"] = double(gpu.instructions);
    m["gpu.computeOps"] = double(gpu.computeOps);
    m["gpu.globalLoads"] = double(gpu.globalLoads);
    m["gpu.globalStores"] = double(gpu.globalStores);
    m["gpu.localLoads"] = double(gpu.localLoads);
    m["gpu.localStores"] = double(gpu.localStores);
    m["gpu.idleCycles"] = double(gpu.idleCycles);
    m["gpu.threadBlocks"] = double(gpu.threadBlocks);
    m["gpu.kernels"] = double(gpu.kernels);
    m["cpu.loads"] = double(cpu.loads);
    m["cpu.stores"] = double(cpu.stores);
    m["gpuL1.loadHits"] = double(gpuL1.loadHits);
    m["gpuL1.loadMisses"] = double(gpuL1.loadMisses);
    m["gpuL1.storeHits"] = double(gpuL1.storeHits);
    m["gpuL1.storeMisses"] = double(gpuL1.storeMisses);
    m["gpuL1.writebacks"] = double(gpuL1.writebacks);
    m["gpuL1.tlbAccesses"] = double(gpuL1.tlbAccesses);
    m["cpuL1.accesses"] = double(cpuL1.accesses());
    m["scratch.reads"] = double(scratch.reads);
    m["scratch.writes"] = double(scratch.writes);
    m["stash.loadHits"] = double(stash.loadHits);
    m["stash.loadMisses"] = double(stash.loadMisses);
    m["stash.storeHits"] = double(stash.storeHits);
    m["stash.storeMisses"] = double(stash.storeMisses);
    m["stash.translations"] = double(stash.translations);
    m["stash.lazyWritebackChunks"] = double(stash.lazyWritebackChunks);
    m["stash.wordsWrittenBack"] = double(stash.wordsWrittenBack);
    m["stash.remoteHits"] = double(stash.remoteHits);
    m["stash.replicationHits"] = double(stash.replicationHits);
    m["llc.accesses"] = double(llc.accesses);
    m["llc.fills"] = double(llc.fills);
    m["llc.remoteForwards"] = double(llc.remoteForwards);
    m["noc.flitHops.read"] = double(noc.flitHops[0]);
    m["noc.flitHops.write"] = double(noc.flitHops[1]);
    m["noc.flitHops.writeback"] = double(noc.flitHops[2]);
    m["noc.flitHops.total"] = double(noc.totalFlitHops());
    m["noc.packets"] = double(noc.packets);
    m["dma.transfers"] = double(dma.transfers);
    m["dma.wordsLoaded"] = double(dma.wordsLoaded);
    m["dma.wordsStored"] = double(dma.wordsStored);
    m["sim.gpuCycles"] = double(gpuCycles);
    return m;
}

} // namespace stashsim
