#include "sim/simperf.hh"

namespace stashsim
{

SimPerf::SimPerf(const EventQueue &eq) : eq(eq)
{
    runBegin();
}

void
SimPerf::runBegin()
{
    start = HostClock::now();
    eventsAtStart = eq.eventsExecuted();
    tickAtStart = eq.curTick();
    open = false;
    phases.clear();
}

SimPerfPhase &
SimPerf::phaseTotals(const char *name)
{
    for (SimPerfPhase &p : phases) {
        if (p.name == name)
            return p;
    }
    phases.push_back(SimPerfPhase{name, 0, 0, 0});
    return phases.back();
}

void
SimPerf::phaseBegin(const char *, Tick)
{
    open = true;
    openStart = HostClock::now();
    openEvents = eq.eventsExecuted();
}

void
SimPerf::phaseEnd(const char *name, Tick)
{
    if (!open)
        return;
    open = false;
    SimPerfPhase &p = phaseTotals(name);
    ++p.count;
    p.events += eq.eventsExecuted() - openEvents;
    p.hostSeconds +=
        std::chrono::duration<double>(HostClock::now() - openStart)
            .count();
}

SimPerfSummary
SimPerf::summary() const
{
    SimPerfSummary s;
    s.events = eq.eventsExecuted() - eventsAtStart;
    s.simTicks = eq.curTick() - tickAtStart;
    s.hostSeconds = hostSecondsNow();
    s.phases = phases;
    return s;
}

double
SimPerf::hostSecondsNow() const
{
    return std::chrono::duration<double>(HostClock::now() - start)
        .count();
}

double
SimPerf::eventsNow() const
{
    return double(eq.eventsExecuted() - eventsAtStart);
}

double
SimPerf::eventsPerSecNow() const
{
    const double secs = hostSecondsNow();
    return secs > 0 ? eventsNow() / secs : 0;
}

double
SimPerf::ticksPerHostSecNow() const
{
    const double secs = hostSecondsNow();
    return secs > 0 ? double(eq.curTick() - tickAtStart) / secs : 0;
}

} // namespace stashsim
