#include "sim/simperf.hh"

#include "sim/log.hh"

namespace stashsim
{

SimPerf::SimPerf(Sources sources) : src(std::move(sources))
{
    sim_assert(src.events && src.tick);
    runBegin();
}

SimPerf::SimPerf(const EventQueue &eq)
    : SimPerf(Sources{
          [&eq] { return eq.eventsExecuted(); },
          [&eq] { return eq.curTick(); },
          [&eq] {
              return QueueShape{eq.peakLiveEvents(),
                                eq.poolChunksAllocated(),
                                eq.wheelInserts(), eq.farInserts()};
          },
          nullptr, // no engine breakdown for a bare queue
      })
{
}

void
SimPerf::runBegin()
{
    start = HostClock::now();
    eventsAtStart = src.events();
    tickAtStart = src.tick();
    open = false;
    phases.clear();
}

SimPerfPhase &
SimPerf::phaseTotals(const char *name)
{
    for (SimPerfPhase &p : phases) {
        if (p.name == name)
            return p;
    }
    phases.push_back(SimPerfPhase{name, 0, 0, 0});
    return phases.back();
}

void
SimPerf::phaseBegin(const char *, Tick)
{
    open = true;
    openStart = HostClock::now();
    openEvents = src.events();
}

void
SimPerf::phaseEnd(const char *name, Tick)
{
    if (!open)
        return;
    open = false;
    SimPerfPhase &p = phaseTotals(name);
    ++p.count;
    p.events += src.events() - openEvents;
    p.hostSeconds +=
        std::chrono::duration<double>(HostClock::now() - openStart)
            .count();
}

SimPerfSummary
SimPerf::summary() const
{
    SimPerfSummary s;
    s.events = src.events() - eventsAtStart;
    s.simTicks = src.tick() - tickAtStart;
    s.hostSeconds = hostSecondsNow();
    if (src.shape)
        s.shape = src.shape();
    if (src.engine)
        s.engine = src.engine();
    s.phases = phases;
    return s;
}

double
SimPerf::hostSecondsNow() const
{
    return std::chrono::duration<double>(HostClock::now() - start)
        .count();
}

double
SimPerf::eventsNow() const
{
    return double(src.events() - eventsAtStart);
}

double
SimPerf::eventsPerSecNow() const
{
    const double secs = hostSecondsNow();
    return secs > 0 ? eventsNow() / secs : 0;
}

double
SimPerf::ticksPerHostSecNow() const
{
    const double secs = hostSecondsNow();
    return secs > 0 ? double(src.tick() - tickAtStart) / secs : 0;
}

} // namespace stashsim
