#include "workloads/kernel_builder.hh"

#include "sim/log.hh"

namespace stashsim
{

TbBuilder::TbBuilder(MemOrg org, unsigned num_warps, unsigned warp_size)
    : org(org), numWarps(num_warps), warpSize(warp_size),
      body(num_warps)
{
    sim_assert(num_warps > 0);
}

bool
TbBuilder::staged(unsigned t) const
{
    const TileUse &use = tiles.at(t);
    if (org == MemOrg::Cache)
        return false;
    if (use.temporary)
        return true;
    if (!use.originallyGlobal)
        return true;
    if (!use.convertible)
        return false;
    // Originally-global data is staged only by the "G" variants.
    return org == MemOrg::ScratchG || org == MemOrg::ScratchGD ||
           org == MemOrg::StashG;
}

OpKind
TbBuilder::localLoadKind() const
{
    return usesStash(org) ? OpKind::StashLd : OpKind::LocalLd;
}

OpKind
TbBuilder::localStoreKind() const
{
    return usesStash(org) ? OpKind::StashSt : OpKind::LocalSt;
}

unsigned
TbBuilder::addTile(const TileUse &use)
{
    sim_assert(use.tile.wellFormed());
    tiles.push_back(use);
    currentTile.push_back(use.tile);
    const unsigned t = unsigned(tiles.size() - 1);

    std::uint8_t slot = 0xff;
    if (staged(t)) {
        localBytes = std::max(
            localBytes, use.localOffset + use.tile.mappedBytes());
        if (usesStash(org) && !use.temporary) {
            sim_assert(nextMapSlot < 4); // Table 2: 4 maps per block
            slot = nextMapSlot++;
        }
    }
    mapSlot.push_back(slot);
    return t;
}

void
TbBuilder::compute(unsigned warp, std::uint16_t cycles,
                   std::int32_t acc_delta)
{
    body.at(warp).push_back(computeOp(cycles, acc_delta));
}

void
TbBuilder::accessTile(unsigned warp, unsigned t,
                      const std::vector<std::uint32_t> &elems,
                      bool is_store, bool store_acc,
                      std::uint32_t value, unsigned word)
{
    sim_assert(!elems.empty() && elems.size() <= warpSize);
    const TileUse &use = tiles.at(t);

    if (staged(t)) {
        // Direct local addressing: no index-computation instruction.
        std::vector<Addr> addrs;
        addrs.reserve(elems.size());
        for (std::uint32_t e : elems) {
            addrs.push_back(Addr(use.localOffset) +
                            Addr(e) * use.tile.fieldSize +
                            Addr(word) * wordBytes);
        }
        const OpKind kind = is_store ? localStoreKind()
                                     : localLoadKind();
        WarpOp op = memOp(kind, std::move(addrs), mapSlot[t]);
        op.storeAcc = store_acc;
        op.value = value;
        body.at(warp).push_back(std::move(op));
        return;
    }

    // Global access: the core computes the (AoS) address itself.
    body.at(warp).push_back(computeOp(1));
    const TileSpec &cur = currentTile.at(t);
    std::vector<Addr> addrs;
    addrs.reserve(elems.size());
    for (std::uint32_t e : elems) {
        addrs.push_back(cur.globalAddrOf(
            e * cur.fieldSize + word * wordBytes));
    }
    const OpKind kind = is_store ? OpKind::GlobalSt : OpKind::GlobalLd;
    WarpOp op = memOp(kind, std::move(addrs));
    op.storeAcc = store_acc;
    op.value = value;
    body.at(warp).push_back(std::move(op));
}

void
TbBuilder::barrier()
{
    for (auto &w : body)
        w.push_back(barrierOp());
}

void
TbBuilder::restage(unsigned t, const TileSpec &new_tile)
{
    const TileUse &use = tiles.at(t);
    sim_assert(!use.writeOut && !use.temporary);
    currentTile.at(t) = new_tile;
    if (!staged(t))
        return; // cache path: only the addresses change

    barrier();
    switch (org) {
      case MemOrg::Scratch:
      case MemOrg::ScratchG: {
        TileUse tmp = use;
        tmp.tile = new_tile;
        emitCopyLoop(body, tmp, true);
        break;
      }
      case MemOrg::ScratchGD: {
        WarpOp op;
        op.kind = OpKind::DmaXfer;
        op.tile = new_tile;
        op.localOffset = use.localOffset;
        op.dmaStore = false;
        body.at(0).push_back(std::move(op));
        break;
      }
      case MemOrg::Stash:
      case MemOrg::StashG: {
        WarpOp op;
        op.kind = OpKind::Remap;
        op.mapSlot = mapSlot.at(t);
        op.tile = new_tile;
        op.localOffset = use.localOffset;
        body.at(0).push_back(std::move(op));
        break;
      }
      case MemOrg::Cache:
        break;
    }
    barrier();
}

void
TbBuilder::emitCopyLoop(std::vector<std::vector<WarpOp>> &streams,
                        const TileUse &use, bool copy_in)
{
    // Elements are divided contiguously among the warps; each loop
    // iteration moves one element per lane: index arithmetic, a
    // global access, and a local access (Figure 1a's two explicit
    // parallel-for loops).
    const std::uint32_t n = use.tile.numElements();
    const std::uint32_t per_warp = (n + numWarps - 1) / numWarps;
    const std::uint32_t field_words = use.tile.fieldSize / wordBytes;

    for (unsigned w = 0; w < numWarps; ++w) {
        const std::uint32_t begin = w * per_warp;
        const std::uint32_t end = std::min(n, begin + per_warp);
        for (std::uint32_t e = begin; e < end; e += warpSize) {
            const std::uint32_t lanes = std::min<std::uint32_t>(
                warpSize, end - e);
            for (std::uint32_t fw = 0; fw < field_words; ++fw) {
                std::vector<Addr> global_addrs, local_addrs;
                global_addrs.reserve(lanes);
                local_addrs.reserve(lanes);
                for (std::uint32_t l = 0; l < lanes; ++l) {
                    const std::uint32_t off =
                        (e + l) * use.tile.fieldSize + fw * wordBytes;
                    global_addrs.push_back(use.tile.globalAddrOf(off));
                    local_addrs.push_back(Addr(use.localOffset) + off);
                }
                streams[w].push_back(computeOp(1)); // index arithmetic
                if (copy_in) {
                    streams[w].push_back(memOp(
                        OpKind::GlobalLd, std::move(global_addrs)));
                    streams[w].push_back(storeAccOp(
                        localStoreKind(), std::move(local_addrs),
                        0xff));
                } else {
                    streams[w].push_back(memOp(localLoadKind(),
                                               std::move(local_addrs),
                                               0xff));
                    streams[w].push_back(storeAccOp(
                        OpKind::GlobalSt, std::move(global_addrs)));
                }
            }
        }
    }
}

ThreadBlock
TbBuilder::build()
{
    ThreadBlock tb;
    tb.localBytes = localBytes;

    std::vector<std::vector<WarpOp>> prologue(numWarps);
    std::vector<std::vector<WarpOp>> epilogue(numWarps);
    bool has_prologue = false;
    bool has_epilogue = false;

    for (unsigned t = 0; t < tiles.size(); ++t) {
        const TileUse &use = tiles[t];
        if (!staged(t) || use.temporary)
            continue;

        switch (org) {
          case MemOrg::Scratch:
          case MemOrg::ScratchG:
            if (use.readIn) {
                emitCopyLoop(prologue, use, true);
                has_prologue = true;
            }
            if (use.writeOut) {
                emitCopyLoop(epilogue, use, false);
                has_epilogue = true;
            }
            break;
          case MemOrg::ScratchGD:
            if (use.readIn) {
                tb.dmaLoads.push_back(DmaOp{use.localOffset, use.tile});
                has_prologue = true;
            }
            if (use.writeOut)
                tb.dmaStores.push_back(
                    DmaOp{use.localOffset, use.tile});
            break;
          case MemOrg::Stash:
          case MemOrg::StashG:
            tb.addMaps.push_back(AddMapOp{use.localOffset, use.tile});
            break;
          case MemOrg::Cache:
            break;
        }
    }

    // Assemble per-warp streams: copy-in prologue / barrier / body /
    // barrier / copy-out epilogue.
    tb.warps.resize(numWarps);
    const bool scratch_loops =
        org == MemOrg::Scratch || org == MemOrg::ScratchG;
    for (unsigned w = 0; w < numWarps; ++w) {
        auto &s = tb.warps[w];
        if (scratch_loops && has_prologue) {
            s.insert(s.end(), prologue[w].begin(), prologue[w].end());
            s.push_back(barrierOp());
        }
        s.insert(s.end(), body[w].begin(), body[w].end());
        if (scratch_loops && has_epilogue) {
            s.push_back(barrierOp());
            s.insert(s.end(), epilogue[w].begin(), epilogue[w].end());
        }
        if (s.empty())
            s.push_back(computeOp(1));
        // A warp must not end on a barrier (CU invariant).
        if (s.back().kind == OpKind::Barrier)
            s.push_back(computeOp(1));
    }
    return tb;
}

std::vector<std::uint32_t>
laneElems(std::uint32_t first, std::uint32_t count, std::uint32_t stride)
{
    std::vector<std::uint32_t> v;
    v.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        v.push_back(first + i * stride);
    return v;
}

} // namespace stashsim
