/**
 * @file
 * The seven GPU applications of the paper's evaluation
 * (Section 5.4.2): LUD, Backprop (BP), NW and Pathfinder (PF) from
 * Rodinia; SGEMM and Stencil from Parboil; and SURF from the OpenSURF
 * computer-vision suite — at the paper's input sizes.
 *
 * We model each application as its kernels' memory-access structure:
 * the same tiling, the same scratchpad staging the original CUDA code
 * performs, the same global access mix, and the same kernel sequence,
 * generated against the portable TbBuilder so each lowers to all six
 * memory configurations exactly as the paper's hand-modified sources
 * did (unified address space, AddMap calls for stash, DMA descriptors
 * for ScratchGD, and so on).  All applications run with 15 CUs and
 * 1 CPU core (Table 2) and perform a token amount of CPU work.
 */

#ifndef STASHSIM_WORKLOADS_APPS_HH
#define STASHSIM_WORKLOADS_APPS_HH

#include <string>
#include <vector>

#include "config/system_config.hh"
#include "workloads/workload.hh"

namespace stashsim
{
namespace workloads
{

/** Application sizing; defaults are the paper's inputs. */
struct AppConfig
{
    MemOrg org = MemOrg::Scratch;
    unsigned cpuCores = 1;

    unsigned ludN = 256;        //!< LUD: 256x256 matrix
    unsigned ludTile = 16;      //!< 16x16 blocks

    unsigned bpInputBytes = 32 * 1024; //!< Backprop: 32 KB layer
    unsigned bpHidden = 16;

    unsigned nwN = 512;         //!< NW: 512x512
    unsigned nwTile = 16;

    unsigned pfCols = 99840;    //!< Pathfinder: 10 x ~100K (390 blocks)
    unsigned pfRows = 10;

    unsigned sgemmM = 128;      //!< SGEMM: A 128x96, B 96x160
    unsigned sgemmK = 96;
    unsigned sgemmN = 160;
    unsigned sgemmTile = 16;

    unsigned stencilX = 128;    //!< Stencil: 128x128x4, 4 iterations
    unsigned stencilY = 128;
    unsigned stencilZ = 4;
    unsigned stencilIters = 4;

    unsigned surfPixels = 66 * 1024 / 4; //!< SURF: 66 KB image
};

Workload makeLud(const AppConfig &cfg);
Workload makeBackprop(const AppConfig &cfg);
Workload makeNw(const AppConfig &cfg);
Workload makePathfinder(const AppConfig &cfg);
Workload makeSgemm(const AppConfig &cfg);
Workload makeStencil(const AppConfig &cfg);
Workload makeSurf(const AppConfig &cfg);

/** Names in the paper's Figure 6 order. */
std::vector<std::string> applicationNames();

/** Factory by name. */
Workload makeApplication(const std::string &name, const AppConfig &cfg);

} // namespace workloads
} // namespace stashsim

#endif // STASHSIM_WORKLOADS_APPS_HH
