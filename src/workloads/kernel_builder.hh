/**
 * @file
 * KernelBuilder: lowers portable benchmark descriptions to each of
 * the paper's six memory configurations (Section 5.3).
 *
 * A workload describes each data structure it touches as a TileUse —
 * the AddMap-style tile plus how the kernel uses it — and emits its
 * compute/access body once.  The builder lowers that description per
 * configuration, mirroring exactly the code transformations the paper
 * applied to its benchmarks:
 *
 *  - Scratch / ScratchG:   staged tiles get explicit copy-in/copy-out
 *    loops (a global load + scratchpad store per 32 elements, plus
 *    the loop's index arithmetic) around a body that uses cheap local
 *    addressing.  ScratchG additionally stages originally-global
 *    tiles.
 *  - ScratchGD:            the copy loops become DMA descriptors.
 *  - Cache:                no staging; body accesses go to the global
 *    address space through the L1, each paying an index-computation
 *    instruction (the address arithmetic the core must do).
 *  - Stash / StashG:       staged tiles become AddMap calls; body
 *    accesses are direct stash addresses (no index computation — the
 *    stash-map does the translation in hardware on misses).  StashG
 *    additionally maps originally-global tiles.
 *
 * Dirty-data conservatism matches the paper: a scratchpad/DMA
 * configuration must copy in *every* element of a tile it may read
 * and write back *every* element it may have written, while stash and
 * cache move only what the body actually touches (the On-demand
 * benchmark's point).
 */

#ifndef STASHSIM_WORKLOADS_KERNEL_BUILDER_HH
#define STASHSIM_WORKLOADS_KERNEL_BUILDER_HH

#include <cstdint>
#include <vector>

#include "config/system_config.hh"
#include "gpu/kernel.hh"
#include "mem/tile.hh"

namespace stashsim
{

/**
 * How a kernel uses one tile of global data.
 */
struct TileUse
{
    TileSpec tile;
    /** Byte offset within the thread block's local allocation. */
    LocalAddr localOffset = 0;
    /** The kernel reads (some of) the tile. */
    bool readIn = true;
    /** The kernel writes (some of) the tile. */
    bool writeOut = true;
    /**
     * The original application accessed this data globally (not via
     * the scratchpad); ScratchG/StashG convert it, the base
     * configurations leave it global.
     */
    bool originallyGlobal = false;
    /**
     * Whether the "G" variants may stage this originally-global data
     * locally.  Data with no block-local reuse (e.g., Pollution's
     * shared cache-resident array) stays global everywhere.
     */
    bool convertible = true;
    /** Private temporary: never moved to/from the global space. */
    bool temporary = false;
};

/**
 * Builds one ThreadBlock for a given memory configuration.
 */
class TbBuilder
{
  public:
    TbBuilder(MemOrg org, unsigned num_warps, unsigned warp_size = 32);

    /** Declares a tile use; returns its handle. */
    unsigned addTile(const TileUse &use);

    /** Appends a compute instruction to warp @p warp's body. */
    void compute(unsigned warp, std::uint16_t cycles,
                 std::int32_t acc_delta = 0);

    /**
     * Appends a coalesced access to tile @p t: lane i touches element
     * `elems[i]` (word @p word of its field).  Lowered per the active
     * configuration (see file comment).
     */
    void accessTile(unsigned warp, unsigned t,
                    const std::vector<std::uint32_t> &elems,
                    bool is_store, bool store_acc = true,
                    std::uint32_t value = 0, unsigned word = 0);

    /** Appends a barrier to every warp. */
    void barrier();

    /**
     * Re-stages tile @p t onto a new global tile mid-kernel (the
     * Parboil-style __syncthreads staging loop).  Lowered per
     * configuration: a fresh copy-in loop (scratchpads), a DMA
     * transfer (ScratchGD), a ChgMap (stash), or just new addresses
     * (cache).  Only read-only tiles may be re-staged (dirty data
     * would need a copy-out first).
     */
    void restage(unsigned t, const TileSpec &new_tile);

    /**
     * Finalizes the block: wraps the body with the staging prologue
     * and epilogue the configuration requires.
     */
    ThreadBlock build();

    /** True when this configuration stages tile @p t locally. */
    bool staged(unsigned t) const;

    MemOrg memOrg() const { return org; }

  private:
    /** Emits the explicit scratchpad copy-in/out loop for a tile. */
    void emitCopyLoop(std::vector<std::vector<WarpOp>> &streams,
                      const TileUse &use, bool copy_in);

    OpKind localLoadKind() const;
    OpKind localStoreKind() const;

    MemOrg org;
    unsigned numWarps;
    unsigned warpSize;
    std::vector<TileUse> tiles;
    /** Tile currently backing each handle (updated by restage). */
    std::vector<TileSpec> currentTile;
    /** Stash map slot per staged tile (stash configs). */
    std::vector<std::uint8_t> mapSlot;
    std::vector<std::vector<WarpOp>> body;
    std::uint32_t localBytes = 0;
    std::uint8_t nextMapSlot = 0;
};

/** Splits @p total elements into per-warp lane vectors of <=32. */
std::vector<std::uint32_t> laneElems(std::uint32_t first,
                                     std::uint32_t count,
                                     std::uint32_t stride = 1);

} // namespace stashsim

#endif // STASHSIM_WORKLOADS_KERNEL_BUILDER_HH
