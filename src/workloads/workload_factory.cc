#include "workloads/workload_factory.hh"

#include "sim/log.hh"
#include "workloads/apps.hh"
#include "workloads/microbench.hh"
#include "workloads/synthetic/synth_workloads.hh"

namespace stashsim
{
namespace workloads
{

const char *
scaleName(Scale s)
{
    switch (s) {
      case Scale::Full:
        return "full";
      case Scale::Quick:
        return "quick";
      case Scale::Smoke:
        return "smoke";
      default:
        return "?";
    }
}

namespace
{

/** The --quick and smoke sizings for the four microbenchmarks. */
MicrobenchConfig
scaledMicrobenchConfig(const WorkloadParams &p)
{
    MicrobenchConfig mb;
    mb.org = p.org;
    if (p.cpuCores)
        mb.cpuCores = p.cpuCores;
    switch (p.scale) {
      case Scale::Full:
        break;
      case Scale::Quick:
        mb.implicitElements /= 4;
        mb.pollutionElementsA /= 4;
        mb.onDemandElements /= 4;
        mb.reuseKernels = 4;
        break;
      case Scale::Smoke:
        mb.implicitElements /= 8;
        mb.pollutionElementsA /= 16;
        // Keep A a multiple of B (the generator asserts it).
        mb.pollutionWordsB /= 4;
        mb.onDemandElements /= 8;
        mb.reuseElements /= 4;
        mb.reuseKernels = 2;
        break;
    }
    return mb;
}

/** The --quick and smoke sizings for the seven applications. */
AppConfig
scaledAppConfig(const WorkloadParams &p)
{
    AppConfig ac;
    ac.org = p.org;
    if (p.cpuCores)
        ac.cpuCores = p.cpuCores;
    switch (p.scale) {
      case Scale::Full:
        break;
      case Scale::Quick:
        ac.ludN = 128;
        ac.nwN = 256;
        ac.pfCols = 256 * 64;
        ac.stencilIters = 2;
        break;
      case Scale::Smoke:
        ac.ludN = 64;
        ac.bpInputBytes = 8 * 1024;
        ac.nwN = 128;
        ac.pfCols = 64 * 64;
        ac.sgemmM = 64;
        ac.sgemmK = 32;
        ac.sgemmN = 64;
        ac.stencilX = 64;
        ac.stencilY = 64;
        ac.stencilIters = 1;
        ac.surfPixels = 16 * 1024 / 4;
        break;
    }
    return ac;
}

WorkloadFactory
buildRegistry()
{
    WorkloadFactory factory;
    {
        for (const auto &name : microbenchmarkNames()) {
            WorkloadInfo info;
            info.name = name;
            info.kind = WorkloadInfo::Kind::Microbenchmark;
            info.description =
                "Figure 5 microbenchmark (Section 5.4.1)";
            factory.registerWorkload(
                std::move(info), [name](const WorkloadParams &p) {
                    return makeMicrobenchmark(
                        name, scaledMicrobenchConfig(p));
                });
        }
        for (const auto &name : applicationNames()) {
            WorkloadInfo info;
            info.name = name;
            info.kind = WorkloadInfo::Kind::Application;
            info.description =
                "Figure 6 application (Section 5.4.2)";
            factory.registerWorkload(
                std::move(info), [name](const WorkloadParams &p) {
                    return makeApplication(name, scaledAppConfig(p));
                });
        }
        registerSyntheticWorkloads(factory);
    }
    return factory;
}

} // namespace

const WorkloadFactory &
WorkloadFactory::instance()
{
    // Magic-static: registration happens exactly once, thread-safely,
    // on first use (sweep workers may race to the first call).
    static const WorkloadFactory factory = buildRegistry();
    return factory;
}

void
WorkloadFactory::registerWorkload(WorkloadInfo info, Maker maker)
{
    if (find(info.name))
        fatal("duplicate workload registration: ", info.name);
    sim_assert(maker != nullptr);
    infos.push_back(std::move(info));
    makers.push_back(std::move(maker));
}

const WorkloadInfo *
WorkloadFactory::find(const std::string &name) const
{
    for (const auto &i : infos) {
        if (i.name == name)
            return &i;
    }
    return nullptr;
}

Workload
WorkloadFactory::make(const std::string &name,
                      const WorkloadParams &params) const
{
    for (std::size_t i = 0; i < infos.size(); ++i) {
        if (infos[i].name == name)
            return makers[i](params);
    }
    fatal("unknown workload: ", name);
}

SystemConfig
WorkloadFactory::defaultConfig(const std::string &name) const
{
    const WorkloadInfo *info = find(name);
    if (!info)
        fatal("unknown workload: ", name);
    // Everything but the microbenchmarks runs on the 15-CU
    // application machine.
    return info->kind == WorkloadInfo::Kind::Microbenchmark
               ? SystemConfig::microbenchmarkDefault()
               : SystemConfig::applicationDefault();
}

} // namespace workloads
} // namespace stashsim
