#include "workloads/microbench.hh"

#include <sstream>

#include "sim/log.hh"
#include "workloads/kernel_builder.hh"

namespace stashsim
{
namespace workloads
{

namespace
{

/** Virtual base addresses of the benchmark arrays. */
constexpr Addr aosBase = 0x1000'0000;
constexpr Addr arrayBBase = 0x2000'0000;

/** Field virtual address of AoS element @p i. */
Addr
fieldVa(Addr base, unsigned object_bytes, std::uint32_t i)
{
    return base + Addr(i) * object_bytes;
}

/** The per-TB tile over elements [first, first+count) of the AoS. */
TileSpec
aosTile(Addr base, unsigned object_bytes, std::uint32_t first,
        std::uint32_t count)
{
    TileSpec t;
    t.globalBase = base + Addr(first) * object_bytes;
    t.fieldSize = wordBytes;
    t.objectSize = object_bytes;
    t.rowSize = count;
    t.strideSize = 0;
    t.numStrides = 1;
    t.isCoherent = true;
    return t;
}

/**
 * Emits the standard per-element body: load field, compute (the last
 * compute op carries the +delta), store field.
 */
void
emitBody(TbBuilder &b, unsigned warp, unsigned tile,
         const std::vector<std::uint32_t> &elems, unsigned compute_ops,
         std::int32_t delta)
{
    b.accessTile(warp, tile, elems, false);
    for (unsigned c = 0; c + 1 < compute_ops; ++c)
        b.compute(warp, 1);
    b.compute(warp, 1, delta);
    b.accessTile(warp, tile, elems, true);
}

/**
 * CPU produce phase: the CPU cores write the initial field values
 * through their coherent L1s (so the data the GPU consumes is
 * communicated, not magically pre-loaded — and the LLC is warm, as
 * in the paper's CPU-GPU communication setup).
 */
std::vector<std::vector<CpuOp>>
cpuWritePhase(Addr base, unsigned object_bytes, std::uint32_t n,
              unsigned cores,
              const std::function<std::uint32_t(std::uint32_t)> &value)
{
    std::vector<std::vector<CpuOp>> work(cores);
    for (std::uint32_t i = 0; i < n; ++i) {
        CpuOp op;
        op.addr = fieldVa(base, object_bytes, i);
        op.isStore = true;
        op.value = value(i);
        work[i % cores].push_back(op);
    }
    return work;
}

/** Splits "read field of every element, check expected" over cores. */
std::vector<std::vector<CpuOp>>
cpuReadPhase(Addr base, unsigned object_bytes, std::uint32_t n,
             unsigned cores,
             const std::function<std::uint32_t(std::uint32_t)> &expect)
{
    std::vector<std::vector<CpuOp>> work(cores);
    for (std::uint32_t i = 0; i < n; ++i) {
        CpuOp op;
        op.addr = fieldVa(base, object_bytes, i);
        op.isStore = false;
        op.value = expect(i);
        op.checkValue = true;
        work[i % cores].push_back(op);
    }
    return work;
}

/** Validates field i == expect(i) for all i. */
std::function<bool(FunctionalMem &, std::vector<std::string> &)>
fieldValidator(Addr base, unsigned object_bytes, std::uint32_t n,
               std::function<std::uint32_t(std::uint32_t)> expect)
{
    return [=](FunctionalMem &fm, std::vector<std::string> &errors) {
        bool ok = true;
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t got =
                fm.readWord(fieldVa(base, object_bytes, i));
            const std::uint32_t want = expect(i);
            if (got != want) {
                if (errors.size() < 8) {
                    std::ostringstream os;
                    os << "element " << i << ": got " << got
                       << ", want " << want;
                    errors.push_back(os.str());
                }
                ok = false;
            }
        }
        return ok;
    };
}

} // namespace

// ---------------------------------------------------------------------
// Implicit
// ---------------------------------------------------------------------

Workload
makeImplicit(const MicrobenchConfig &cfg)
{
    const std::uint32_t n = cfg.implicitElements;
    const unsigned tpb = cfg.threadsPerBlock;
    const unsigned warps = tpb / 32;
    const std::uint32_t num_tbs = n / tpb;
    sim_assert(n % tpb == 0);

    Workload wl;
    wl.name = "Implicit";
    wl.init = [=](FunctionalMem &fm) {
        for (std::uint32_t i = 0; i < n; ++i)
            fm.writeWord(fieldVa(aosBase, cfg.objectBytes, i), i);
    };

    wl.phases.push_back(Phase::cpu(cpuWritePhase(
        aosBase, cfg.objectBytes, n, cfg.cpuCores,
        [](std::uint32_t i) { return i; })));
    wl.warmupPhases = 1;

    Kernel k;
    k.name = "implicit_update";
    for (std::uint32_t tb = 0; tb < num_tbs; ++tb) {
        TbBuilder b(cfg.org, warps);
        TileUse use;
        use.tile = aosTile(aosBase, cfg.objectBytes, tb * tpb, tpb);
        use.localOffset = 0;
        use.readIn = true;
        use.writeOut = true;
        const unsigned t = b.addTile(use);
        for (unsigned w = 0; w < warps; ++w) {
            emitBody(b, w, t, laneElems(w * 32, 32),
                     cfg.computeOpsPerElement, 1);
        }
        k.blocks.push_back(b.build());
    }
    wl.phases.push_back(Phase::gpu(std::move(k)));

    wl.phases.push_back(Phase::cpu(cpuReadPhase(
        aosBase, cfg.objectBytes, n, cfg.cpuCores,
        [](std::uint32_t i) { return i + 1; })));

    wl.validate = fieldValidator(aosBase, cfg.objectBytes, n,
                                 [](std::uint32_t i) { return i + 1; });
    return wl;
}

// ---------------------------------------------------------------------
// Pollution
// ---------------------------------------------------------------------

Workload
makePollution(const MicrobenchConfig &cfg)
{
    const std::uint32_t n = cfg.pollutionElementsA;
    const std::uint32_t bn = cfg.pollutionWordsB;
    const unsigned tpb = cfg.threadsPerBlock;
    const unsigned warps = tpb / 32;
    const std::uint32_t num_tbs = n / tpb;
    sim_assert(n % tpb == 0 && n % bn == 0);

    Workload wl;
    wl.name = "Pollution";
    wl.init = [=](FunctionalMem &fm) {
        for (std::uint32_t i = 0; i < n; ++i)
            fm.writeWord(fieldVa(aosBase, cfg.objectBytes, i), i);
        for (std::uint32_t i = 0; i < bn; ++i)
            fm.writeWord(arrayBBase + Addr(i) * wordBytes, 1000 + i);
    };

    // B: a dense, cache-resident array, deliberately left in the
    // global space in every configuration (see file comment in the
    // header).
    TileSpec b_tile;
    b_tile.globalBase = arrayBBase;
    b_tile.fieldSize = wordBytes;
    b_tile.objectSize = wordBytes;
    b_tile.rowSize = bn;
    b_tile.strideSize = 0;
    b_tile.numStrides = 1;

    {
        auto work = cpuWritePhase(aosBase, cfg.objectBytes, n,
                                  cfg.cpuCores,
                                  [](std::uint32_t i) { return i; });
        auto bw = cpuWritePhase(arrayBBase, wordBytes, bn,
                                cfg.cpuCores, [](std::uint32_t i) {
                                    return 1000 + i;
                                });
        for (unsigned c = 0; c < cfg.cpuCores; ++c)
            work[c].insert(work[c].end(), bw[c].begin(), bw[c].end());
        wl.phases.push_back(Phase::cpu(std::move(work)));
        wl.warmupPhases = 1;
    }

    Kernel k;
    k.name = "pollution_sum";
    for (std::uint32_t tb = 0; tb < num_tbs; ++tb) {
        TbBuilder b(cfg.org, warps);
        TileUse a_use;
        a_use.tile = aosTile(aosBase, cfg.objectBytes, tb * tpb, tpb);
        a_use.readIn = true;
        a_use.writeOut = true;
        const unsigned ta = b.addTile(a_use);

        TileUse b_use;
        b_use.tile = b_tile;
        b_use.readIn = true;
        b_use.writeOut = false;
        b_use.originallyGlobal = true;
        b_use.convertible = false; // shared across blocks: stays global
        const unsigned tbb = b.addTile(b_use);

        for (unsigned w = 0; w < warps; ++w) {
            const std::vector<std::uint32_t> elems = laneElems(w * 32,
                                                               32);
            // t = B[(global element) mod |B|]: the reused, cache-
            // resident read.  Its value feeds the computation; the
            // one-accumulator dataflow model folds that contribution
            // into the compute delta below (see header comment).
            std::vector<std::uint32_t> b_elems;
            for (std::uint32_t e : elems)
                b_elems.push_back((tb * tpb + e) % bn);
            b.accessTile(w, tbb, b_elems, false);
            // acc = A[i]
            b.accessTile(w, ta, elems, false);
            for (unsigned c = 0; c + 1 < cfg.pollutionComputeOps; ++c)
                b.compute(w, 1);
            b.compute(w, 1, 1);
            b.accessTile(w, ta, elems, true);
        }
        k.blocks.push_back(b.build());
    }
    wl.phases.push_back(Phase::gpu(std::move(k)));

    wl.phases.push_back(Phase::cpu(cpuReadPhase(
        aosBase, cfg.objectBytes, n, cfg.cpuCores,
        [](std::uint32_t i) { return i + 1; })));

    wl.validate =
        fieldValidator(aosBase, cfg.objectBytes, n,
                       [](std::uint32_t i) { return i + 1; });
    return wl;
}

// ---------------------------------------------------------------------
// On-demand
// ---------------------------------------------------------------------

Workload
makeOnDemand(const MicrobenchConfig &cfg)
{
    const std::uint32_t n = cfg.onDemandElements;
    const unsigned tpb = cfg.threadsPerBlock;
    const unsigned warps = tpb / 32;
    const std::uint32_t num_tbs = n / tpb;
    sim_assert(n % tpb == 0);

    // The "runtime condition": lane (17 tb + 13 w) mod 32 of each
    // warp touches its element; everything else is untouched.
    auto chosen_lane = [](std::uint32_t tb, unsigned w) {
        return (17 * tb + 13 * w + 5) % 32;
    };
    auto accessed = [=](std::uint32_t i) {
        const std::uint32_t tb = i / tpb;
        const unsigned w = (i % tpb) / 32;
        return (i % 32) == chosen_lane(tb, w);
    };

    Workload wl;
    wl.name = "On-demand";
    wl.init = [=](FunctionalMem &fm) {
        for (std::uint32_t i = 0; i < n; ++i)
            fm.writeWord(fieldVa(aosBase, cfg.objectBytes, i), i);
    };

    wl.phases.push_back(Phase::cpu(cpuWritePhase(
        aosBase, cfg.objectBytes, n, cfg.cpuCores,
        [](std::uint32_t i) { return i; })));
    wl.warmupPhases = 1;

    Kernel k;
    k.name = "ondemand_update";
    for (std::uint32_t tb = 0; tb < num_tbs; ++tb) {
        TbBuilder b(cfg.org, warps);
        TileUse use;
        use.tile = aosTile(aosBase, cfg.objectBytes, tb * tpb, tpb);
        use.readIn = true;
        use.writeOut = true;
        const unsigned t = b.addTile(use);
        for (unsigned w = 0; w < warps; ++w) {
            // Evaluate the condition, then touch a single element.
            b.compute(w, 1);
            const std::uint32_t e = w * 32 + chosen_lane(tb, w);
            emitBody(b, w, t, {e}, cfg.onDemandComputeOps, 1);
        }
        k.blocks.push_back(b.build());
    }
    wl.phases.push_back(Phase::gpu(std::move(k)));

    wl.phases.push_back(Phase::cpu(cpuReadPhase(
        aosBase, cfg.objectBytes, n, cfg.cpuCores,
        [=](std::uint32_t i) { return accessed(i) ? i + 1 : i; })));

    wl.validate =
        fieldValidator(aosBase, cfg.objectBytes, n,
                       [=](std::uint32_t i) {
                           return accessed(i) ? i + 1 : i;
                       });
    return wl;
}

// ---------------------------------------------------------------------
// Reuse
// ---------------------------------------------------------------------

Workload
makeReuse(const MicrobenchConfig &cfg)
{
    const std::uint32_t n = cfg.reuseElements;
    const unsigned tpb = cfg.reuseThreadsPerBlock;
    const unsigned warps = tpb / 32;
    const std::uint32_t num_tbs = n / tpb;
    const unsigned kernels = cfg.reuseKernels;
    sim_assert(n % tpb == 0);

    Workload wl;
    wl.name = "Reuse";
    wl.init = [=](FunctionalMem &fm) {
        for (std::uint32_t i = 0; i < n; ++i)
            fm.writeWord(fieldVa(aosBase, cfg.objectBytes, i), i);
    };

    wl.phases.push_back(Phase::cpu(cpuWritePhase(
        aosBase, cfg.objectBytes, n, cfg.cpuCores,
        [](std::uint32_t i) { return i; })));
    wl.warmupPhases = 1;

    for (unsigned kk = 0; kk < kernels; ++kk) {
        Kernel k;
        k.name = "reuse_pass";
        for (std::uint32_t tb = 0; tb < num_tbs; ++tb) {
            TbBuilder b(cfg.org, warps);
            TileUse use;
            use.tile = aosTile(aosBase, cfg.objectBytes, tb * tpb, tpb);
            use.readIn = true;
            use.writeOut = true;
            const unsigned t = b.addTile(use);
            for (unsigned w = 0; w < warps; ++w) {
                emitBody(b, w, t, laneElems(w * 32, 32),
                         cfg.reuseComputeOps, 1);
            }
            k.blocks.push_back(b.build());
        }
        wl.phases.push_back(Phase::gpu(std::move(k)));
    }

    wl.phases.push_back(Phase::cpu(cpuReadPhase(
        aosBase, cfg.objectBytes, n, cfg.cpuCores,
        [=](std::uint32_t i) { return i + kernels; })));

    wl.validate =
        fieldValidator(aosBase, cfg.objectBytes, n,
                       [=](std::uint32_t i) { return i + kernels; });
    return wl;
}

// ---------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------

std::vector<std::string>
microbenchmarkNames()
{
    return {"Implicit", "Pollution", "On-demand", "Reuse"};
}

Workload
makeMicrobenchmark(const std::string &name, const MicrobenchConfig &cfg)
{
    if (name == "Implicit")
        return makeImplicit(cfg);
    if (name == "Pollution")
        return makePollution(cfg);
    if (name == "On-demand")
        return makeOnDemand(cfg);
    if (name == "Reuse")
        return makeReuse(cfg);
    fatal("unknown microbenchmark: ", name);
}

} // namespace workloads
} // namespace stashsim
