/**
 * @file
 * Name-keyed workload registry.
 *
 * Unifies the microbenchmark (MicrobenchConfig) and application
 * (AppConfig) factories behind one table, so drivers and CLIs can
 * enumerate, look up, and build every workload by name without
 * hardcoding the two kinds.  Input sizing is selected by Scale:
 * Full is the paper's evaluation inputs, Quick the scaled-down
 * inputs the benches' --quick mode always used, and Smoke a
 * seconds-not-minutes sizing for tests and CI smoke runs.
 */

#ifndef STASHSIM_WORKLOADS_WORKLOAD_FACTORY_HH
#define STASHSIM_WORKLOADS_WORKLOAD_FACTORY_HH

#include <functional>
#include <string>
#include <vector>

#include "config/system_config.hh"
#include "workloads/workload.hh"

namespace stashsim
{
namespace workloads
{

/** Input sizing for a workload build. */
enum class Scale
{
    Full,  //!< the paper's evaluation inputs
    Quick, //!< the benches' --quick inputs (~4x smaller)
    Smoke, //!< test/CI smoke inputs (~16x smaller)
};

/** Printable name of a scale. */
const char *scaleName(Scale s);

/** Everything a factory entry needs to build its workload. */
struct WorkloadParams
{
    MemOrg org = MemOrg::Scratch;
    /** CPU cores the workload may use; 0 = the kind's default. */
    unsigned cpuCores = 0;
    Scale scale = Scale::Full;
};

/** Registry metadata for one workload. */
struct WorkloadInfo
{
    enum class Kind
    {
        Microbenchmark,
        Application,
        Synthetic, //!< parameterized traffic generator
        Replay,    //!< stashtrace replay frontend
    };

    std::string name;
    Kind kind = Kind::Microbenchmark;
    std::string description;

    const char *
    kindName() const
    {
        switch (kind) {
          case Kind::Microbenchmark:
            return "microbenchmark";
          case Kind::Application:
            return "application";
          case Kind::Synthetic:
            return "synthetic";
          case Kind::Replay:
            return "replay";
          default:
            return "?";
        }
    }
};

/**
 * The workload registry; see file comment.
 */
class WorkloadFactory
{
  public:
    using Maker = std::function<Workload(const WorkloadParams &)>;

    /** The process-wide registry with every built-in registered. */
    static const WorkloadFactory &instance();

    /** Registers a workload; fatal() on duplicate names. */
    void registerWorkload(WorkloadInfo info, Maker maker);

    /** Every registered workload, in registration order. */
    const std::vector<WorkloadInfo> &list() const { return infos; }

    /** Lookup by name; nullptr when unknown. */
    const WorkloadInfo *find(const std::string &name) const;

    /** Builds @p name; fatal() when unknown. */
    Workload make(const std::string &name,
                  const WorkloadParams &params) const;

    /**
     * The Table 2 machine for @p name's kind (microbenchmarkDefault
     * or applicationDefault); fatal() when unknown.
     */
    SystemConfig defaultConfig(const std::string &name) const;

  private:
    std::vector<WorkloadInfo> infos;
    std::vector<Maker> makers; //!< parallel to infos
};

} // namespace workloads
} // namespace stashsim

#endif // STASHSIM_WORKLOADS_WORKLOAD_FACTORY_HH
