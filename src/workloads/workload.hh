/**
 * @file
 * Workload abstraction: what the System runs.
 *
 * A workload is a sequence of phases — GPU kernel launches and CPU
 * access loops — plus functional-memory init and validation hooks.
 * Phases are separated by synchronization (the paper's system is
 * data-race-free: CPUs and GPUs never access the same data
 * concurrently in conflicting ways), which the System enforces by
 * draining all memory activity and self-invalidating the consumers'
 * L1s between phases.
 */

#ifndef STASHSIM_WORKLOADS_WORKLOAD_HH
#define STASHSIM_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "cpu/cpu_core.hh"
#include "gpu/kernel.hh"
#include "mem/functional_mem.hh"

namespace stashsim
{

/**
 * One synchronization-delimited phase.
 */
struct Phase
{
    enum class Kind
    {
        Gpu, //!< one kernel launch, blocks split across the CUs
        Cpu, //!< per-core CPU access loops
    };

    Kind kind = Kind::Gpu;
    Kernel kernel;                        //!< Kind::Gpu
    std::vector<std::vector<CpuOp>> cpuWork; //!< Kind::Cpu, per core

    static Phase
    gpu(Kernel k)
    {
        Phase p;
        p.kind = Kind::Gpu;
        p.kernel = std::move(k);
        return p;
    }

    static Phase
    cpu(std::vector<std::vector<CpuOp>> work)
    {
        Phase p;
        p.kind = Kind::Cpu;
        p.cpuWork = std::move(work);
        return p;
    }
};

/**
 * A complete benchmark.
 */
struct Workload
{
    std::string name;
    std::function<void(FunctionalMem &)> init;
    std::vector<Phase> phases;
    /**
     * Leading phases excluded from the measured statistics (e.g., a
     * CPU phase that produces the input data).  The paper's
     * measurement window starts at the first GPU kernel.
     */
    unsigned warmupPhases = 0;
    /** Returns true when the final memory image is correct. */
    std::function<bool(FunctionalMem &, std::vector<std::string> &)>
        validate;
};

} // namespace stashsim

#endif // STASHSIM_WORKLOADS_WORKLOAD_HH
