/**
 * @file
 * Workload abstraction: what the System runs.
 *
 * A workload is a sequence of phases — GPU kernel launches and CPU
 * access loops — plus functional-memory init and validation hooks.
 * Phases are separated by synchronization (the paper's system is
 * data-race-free: CPUs and GPUs never access the same data
 * concurrently in conflicting ways), which the System enforces by
 * draining all memory activity and self-invalidating the consumers'
 * L1s between phases.
 */

#ifndef STASHSIM_WORKLOADS_WORKLOAD_HH
#define STASHSIM_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "cpu/cpu_core.hh"
#include "gpu/kernel.hh"
#include "mem/functional_mem.hh"

namespace stashsim
{

class SnapshotWriter;
class SnapshotReader;

/**
 * One synchronization-delimited phase.
 */
struct Phase
{
    enum class Kind
    {
        Gpu, //!< one kernel launch, blocks split across the CUs
        Cpu, //!< per-core CPU access loops
    };

    Kind kind = Kind::Gpu;
    Kernel kernel;                        //!< Kind::Gpu
    std::vector<std::vector<CpuOp>> cpuWork; //!< Kind::Cpu, per core

    static Phase
    gpu(Kernel k)
    {
        Phase p;
        p.kind = Kind::Gpu;
        p.kernel = std::move(k);
        return p;
    }

    static Phase
    cpu(std::vector<std::vector<CpuOp>> work)
    {
        Phase p;
        p.kind = Kind::Cpu;
        p.cpuWork = std::move(work);
        return p;
    }
};

/**
 * A complete benchmark.
 */
struct Workload
{
    std::string name;
    std::function<void(FunctionalMem &)> init;
    std::vector<Phase> phases;
    /**
     * Leading phases excluded from the measured statistics (e.g., a
     * CPU phase that produces the input data).  The paper's
     * measurement window starts at the first GPU kernel.
     */
    unsigned warmupPhases = 0;
    /** Returns true when the final memory image is correct. */
    std::function<bool(FunctionalMem &, std::vector<std::string> &)>
        validate;
    /**
     * Optional generator-state hooks, mirroring the fault injector's
     * snapshot contract: when set, System::writeCheckpoint writes a
     * "workload" section via snapshotState, and a restored run feeds
     * it back through restoreState before resuming.  Workloads whose
     * phases are pre-materialized (everything in the registry today)
     * use this to pin their identity — e.g. the synthetic engine's
     * spec hash and mt19937_64 stream — so a checkpoint can never
     * silently resume under a differently-parameterized twin.
     */
    std::function<void(SnapshotWriter &)> snapshotState;
    std::function<void(SnapshotReader &)> restoreState;
};

} // namespace stashsim

#endif // STASHSIM_WORKLOADS_WORKLOAD_HH
