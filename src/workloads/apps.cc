#include "workloads/apps.hh"

#include "sim/log.hh"
#include "workloads/kernel_builder.hh"

namespace stashsim
{
namespace workloads
{

namespace
{

/** Virtual base addresses of the application arrays. */
constexpr Addr matABase = 0x4000'0000;   // primary matrix / input
constexpr Addr matBBase = 0x5000'0000;   // secondary matrix
constexpr Addr matCBase = 0x6000'0000;   // output
constexpr Addr matDBase = 0x7000'0000;   // auxiliary

/** Element address in a dense row-major float matrix. */
Addr
matAddr(Addr base, unsigned ncols, unsigned r, unsigned c)
{
    return base + (Addr(r) * ncols + c) * wordBytes;
}

/** 2D sub-tile of a dense matrix: rows x cols at (r0, c0). */
TileSpec
tile2d(Addr base, unsigned ncols, unsigned r0, unsigned c0,
       unsigned rows, unsigned cols)
{
    TileSpec t;
    t.globalBase = matAddr(base, ncols, r0, c0);
    t.fieldSize = wordBytes;
    t.objectSize = wordBytes;
    t.rowSize = cols;
    t.strideSize = ncols * wordBytes;
    t.numStrides = rows;
    t.isCoherent = true;
    return t;
}

/** 1D dense tile of @p count words at @p base + offset words. */
TileSpec
tile1d(Addr base, std::uint32_t first_word, std::uint32_t count)
{
    TileSpec t;
    t.globalBase = base + Addr(first_word) * wordBytes;
    t.fieldSize = wordBytes;
    t.objectSize = wordBytes;
    t.rowSize = count;
    t.strideSize = 0;
    t.numStrides = 1;
    t.isCoherent = true;
    return t;
}

/** Initializes @p words words at @p base with a simple pattern. */
void
initWords(FunctionalMem &fm, Addr base, std::uint32_t words)
{
    for (std::uint32_t i = 0; i < words; ++i)
        fm.writeWord(base + Addr(i) * wordBytes, i % 251 + 1);
}

/**
 * A small CPU consumption phase: read @p words output words.  The
 * paper's applications "perform very little work on the CPU"
 * (Section 5.4.2), so this stays small relative to the kernels.
 */
Phase
cpuConsume(Addr base, std::uint32_t words, unsigned cores)
{
    std::vector<std::vector<CpuOp>> work(cores);
    for (std::uint32_t i = 0; i < words; ++i) {
        CpuOp op;
        op.addr = base + Addr(i) * wordBytes;
        work[i % cores].push_back(op);
    }
    return Phase::cpu(std::move(work));
}

/** Elements 0..count-1 of row @p r in a rows x cols staged tile. */
std::vector<std::uint32_t>
rowElems(unsigned r, unsigned cols, unsigned count = 0)
{
    return laneElems(r * cols, count ? count : cols);
}

} // namespace

// ---------------------------------------------------------------------
// LUD (Rodinia): blocked LU decomposition, 256x256, 16x16 tiles
// ---------------------------------------------------------------------

Workload
makeLud(const AppConfig &cfg)
{
    const unsigned n = cfg.ludN;
    const unsigned t = cfg.ludTile;
    const unsigned nb = n / t;
    sim_assert(n % t == 0);

    Workload wl;
    wl.name = "LUD";
    wl.init = [=](FunctionalMem &fm) { initWords(fm, matABase, n * n); };

    for (unsigned k = 0; k < nb; ++k) {
        // --- Diagonal kernel: factor tile (k, k) in place.
        {
            Kernel ker;
            ker.name = "lud_diagonal";
            TbBuilder b(cfg.org, t * t / 64); // t*t threads
            TileUse diag;
            diag.tile = tile2d(matABase, n, k * t, k * t, t, t);
            diag.readIn = true;
            diag.writeOut = true;
            const unsigned td = b.addTile(diag);
            const unsigned warps = t * t / 64;
            for (unsigned r = 0; r < t; ++r) {
                const unsigned w = r % warps;
                b.accessTile(w, td, rowElems(r, t), false);
                b.compute(w, 2);
                        b.compute(w, 3);
                b.compute(w, 1, 1);
                b.accessTile(w, td, rowElems(r, t), true);
            }
            ker.blocks.push_back(b.build());
            wl.phases.push_back(Phase::gpu(std::move(ker)));
        }

        // --- Perimeter kernel: update row and column strips.
        if (k + 1 < nb) {
            Kernel ker;
            ker.name = "lud_perimeter";
            for (unsigned j = k + 1; j < nb; ++j) {
                for (int is_col = 0; is_col < 2; ++is_col) {
                    TbBuilder b(cfg.org, t * t / 64);
                    TileUse diag;
                    diag.tile = tile2d(matABase, n, k * t, k * t, t, t);
                    diag.readIn = true;
                    diag.writeOut = false;
                    const unsigned td = b.addTile(diag);
                    TileUse strip;
                    strip.tile =
                        is_col
                            ? tile2d(matABase, n, j * t, k * t, t, t)
                            : tile2d(matABase, n, k * t, j * t, t, t);
                    strip.readIn = true;
                    strip.writeOut = true;
                    strip.localOffset = diag.tile.mappedBytes();
                    const unsigned ts = b.addTile(strip);
                    const unsigned warps = t * t / 64;
                    for (unsigned r = 0; r < t; ++r) {
                        const unsigned w = r % warps;
                        b.accessTile(w, td, rowElems(r, t), false);
                        b.accessTile(w, ts, rowElems(r, t), false);
                        b.compute(w, 2);
                        b.compute(w, 3);
                        b.compute(w, 1, 1);
                        b.accessTile(w, ts, rowElems(r, t), true);
                    }
                    ker.blocks.push_back(b.build());
                }
            }
            wl.phases.push_back(Phase::gpu(std::move(ker)));
        }

        // --- Internal kernel: trailing submatrix update.
        if (k + 1 < nb) {
            Kernel ker;
            ker.name = "lud_internal";
            for (unsigned i = k + 1; i < nb; ++i) {
                for (unsigned j = k + 1; j < nb; ++j) {
                    TbBuilder b(cfg.org, t * t / 64);
                    TileUse row;
                    row.tile = tile2d(matABase, n, k * t, j * t, t, t);
                    row.readIn = true;
                    row.writeOut = false;
                    const unsigned tr = b.addTile(row);
                    TileUse col;
                    col.tile = tile2d(matABase, n, i * t, k * t, t, t);
                    col.readIn = true;
                    col.writeOut = false;
                    col.localOffset = row.tile.mappedBytes();
                    const unsigned tc = b.addTile(col);
                    // The updated tile is accessed globally in the
                    // original code (streamed once, no local reuse).
                    TileUse upd;
                    upd.tile = tile2d(matABase, n, i * t, j * t, t, t);
                    upd.readIn = true;
                    upd.writeOut = true;
                    upd.originallyGlobal = true;
                    upd.localOffset =
                        col.localOffset + col.tile.mappedBytes();
                    const unsigned tu = b.addTile(upd);

                    const unsigned warps = t * t / 64;
                    for (unsigned r = 0; r < t; ++r) {
                        const unsigned w = r % warps;
                        b.accessTile(w, tr, rowElems(r, t), false);
                        b.accessTile(w, tc, rowElems(r, t), false);
                        b.compute(w, 2);
                        b.compute(w, 3);
                        b.accessTile(w, tu, rowElems(r, t), false);
                        b.compute(w, 1, 1);
                        b.accessTile(w, tu, rowElems(r, t), true);
                    }
                    ker.blocks.push_back(b.build());
                }
            }
            wl.phases.push_back(Phase::gpu(std::move(ker)));
        }
    }

    wl.phases.push_back(cpuConsume(matABase, 256, cfg.cpuCores));
    return wl;
}

// ---------------------------------------------------------------------
// Backprop (Rodinia): one hidden layer, 32 KB input
// ---------------------------------------------------------------------

Workload
makeBackprop(const AppConfig &cfg)
{
    const unsigned in_words = cfg.bpInputBytes / wordBytes; // 8192
    const unsigned h = cfg.bpHidden;                        // 16
    const unsigned num_tbs = in_words / h / h;              // 32

    Workload wl;
    wl.name = "BP";
    wl.init = [=](FunctionalMem &fm) {
        initWords(fm, matABase, in_words);      // input units
        initWords(fm, matBBase, in_words * h / h); // weights (per tb)
        initWords(fm, matDBase, num_tbs * h);   // deltas
    };

    // Forward kernel: each block stages a 16-wide input slice and a
    // 16x16 weight tile, produces partial sums.
    {
        Kernel ker;
        ker.name = "bp_layerforward";
        for (unsigned tb = 0; tb < num_tbs; ++tb) {
            TbBuilder b(cfg.org, 8);
            TileUse in;
            in.tile = tile1d(matABase, tb * h * h, h * h);
            in.readIn = true;
            in.writeOut = false;
            const unsigned ti = b.addTile(in);
            TileUse wt;
            wt.tile = tile2d(matBBase, in_words / h, tb * h, 0, h, h);
            wt.readIn = true;
            wt.writeOut = false;
            wt.localOffset = in.tile.mappedBytes();
            const unsigned tw = b.addTile(wt);
            // Partial sums written once, globally.
            TileUse out;
            out.tile = tile1d(matCBase, tb * h, h);
            out.readIn = false;
            out.writeOut = true;
            out.originallyGlobal = true;
            out.localOffset = wt.localOffset + wt.tile.mappedBytes();
            const unsigned to = b.addTile(out);

            for (unsigned r = 0; r < h; ++r) {
                const unsigned w = r % 8;
                b.accessTile(w, ti, rowElems(r, h), false);
                b.accessTile(w, tw, rowElems(r, h), false);
                b.compute(w, 2);
                        b.compute(w, 3);
                b.compute(w, 1, 1);
            }
            b.accessTile(0, to, laneElems(0, h), true);
            ker.blocks.push_back(b.build());
        }
        wl.phases.push_back(Phase::gpu(std::move(ker)));
    }

    // Weight-adjust kernel: re-stages the weight tile read-write and
    // streams the deltas globally.
    {
        Kernel ker;
        ker.name = "bp_adjust_weights";
        for (unsigned tb = 0; tb < num_tbs; ++tb) {
            TbBuilder b(cfg.org, 8);
            TileUse wt;
            wt.tile = tile2d(matBBase, in_words / h, tb * h, 0, h, h);
            wt.readIn = true;
            wt.writeOut = true;
            const unsigned tw = b.addTile(wt);
            TileUse dl;
            dl.tile = tile1d(matDBase, tb * h, h);
            dl.readIn = true;
            dl.writeOut = false;
            dl.originallyGlobal = true;
            dl.localOffset = wt.tile.mappedBytes();
            const unsigned td = b.addTile(dl);

            for (unsigned r = 0; r < h; ++r) {
                const unsigned w = r % 8;
                b.accessTile(w, td, laneElems(0, h), false);
                b.accessTile(w, tw, rowElems(r, h), false);
                b.compute(w, 2);
                        b.compute(w, 3);
                b.compute(w, 1, 1);
                b.accessTile(w, tw, rowElems(r, h), true);
            }
            ker.blocks.push_back(b.build());
        }
        wl.phases.push_back(Phase::gpu(std::move(ker)));
    }

    wl.phases.push_back(cpuConsume(matBBase, 256, cfg.cpuCores));
    return wl;
}

// ---------------------------------------------------------------------
// NW (Rodinia): Needleman-Wunsch wavefront, 512x512, 16x16 tiles
// ---------------------------------------------------------------------

Workload
makeNw(const AppConfig &cfg)
{
    const unsigned n = cfg.nwN;
    const unsigned t = cfg.nwTile;
    const unsigned nb = n / t;
    sim_assert(n % t == 0);

    Workload wl;
    wl.name = "NW";
    wl.init = [=](FunctionalMem &fm) {
        initWords(fm, matABase, n * n); // itemsets
        initWords(fm, matBBase, n * n); // reference
    };

    auto make_tb = [&](unsigned bi, unsigned bj) {
        TbBuilder b(cfg.org, 4); // 128 threads
        TileUse ref;
        ref.tile = tile2d(matBBase, n, bi * t, bj * t, t, t);
        ref.readIn = true;
        ref.writeOut = false;
        const unsigned tref = b.addTile(ref);
        TileUse body;
        body.tile = tile2d(matABase, n, bi * t, bj * t, t, t);
        body.readIn = true;
        body.writeOut = true;
        body.localOffset = ref.tile.mappedBytes();
        const unsigned tbody = b.addTile(body);
        // North halo row (written by the block above, a previous
        // kernel): staged read-only.
        unsigned thalo = tbody;
        if (bi > 0) {
            TileUse halo;
            halo.tile = tile2d(matABase, n, bi * t - 1, bj * t, 1, t);
            halo.readIn = true;
            halo.writeOut = false;
            halo.localOffset =
                body.localOffset + body.tile.mappedBytes();
            thalo = b.addTile(halo);
        }

        // Wavefront within the tile: process rows with a barrier
        // between them (anti-diagonal dependences).
        for (unsigned r = 0; r < t; ++r) {
            const unsigned w = r % 4;
            if (r == 0 && bi > 0)
                b.accessTile(w, thalo, rowElems(0, t), false);
            else if (r > 0)
                b.accessTile(w, tbody, rowElems(r - 1, t), false);
            b.accessTile(w, tref, rowElems(r, t), false);
            b.compute(w, 2);
                        b.compute(w, 3);
            b.compute(w, 1, 1);
            b.accessTile(w, tbody, rowElems(r, t), true);
            if (r % 4 == 3)
                b.barrier();
        }
        return b.build();
    };

    // Forward sweep of anti-diagonals.
    for (unsigned d = 0; d < 2 * nb - 1; ++d) {
        Kernel ker;
        ker.name = "nw_diagonal";
        for (unsigned bi = 0; bi < nb; ++bi) {
            if (d < bi)
                continue;
            const unsigned bj = d - bi;
            if (bj >= nb)
                continue;
            ker.blocks.push_back(make_tb(bi, bj));
        }
        wl.phases.push_back(Phase::gpu(std::move(ker)));
    }

    wl.phases.push_back(cpuConsume(matABase, 256, cfg.cpuCores));
    return wl;
}

// ---------------------------------------------------------------------
// Pathfinder (Rodinia): 10 x 100K dynamic programming
// ---------------------------------------------------------------------

Workload
makePathfinder(const AppConfig &cfg)
{
    const unsigned cols = cfg.pfCols;
    const unsigned rows = cfg.pfRows;
    const unsigned seg = 256; // columns per thread block
    const unsigned num_tbs = cols / seg;
    sim_assert(cols % seg == 0);

    Workload wl;
    wl.name = "PF";
    wl.init = [=](FunctionalMem &fm) {
        initWords(fm, matABase, rows * cols); // wall
        initWords(fm, matBBase, cols);        // result ping
        initWords(fm, matCBase, cols);        // result pong
    };

    for (unsigned r = 0; r + 1 < rows; ++r) {
        const Addr src = (r % 2 == 0) ? matBBase : matCBase;
        const Addr dst = (r % 2 == 0) ? matCBase : matBBase;
        Kernel ker;
        ker.name = "pf_dynproc";
        for (unsigned tb = 0; tb < num_tbs; ++tb) {
            TbBuilder b(cfg.org, 8);
            // Previous row segment with halo.
            const std::uint32_t first =
                tb == 0 ? 0 : tb * seg - 1;
            const std::uint32_t count =
                (tb == 0 || tb + 1 == num_tbs) ? seg + 1 : seg + 2;
            TileUse prev;
            prev.tile = tile1d(src, first, count);
            prev.readIn = true;
            prev.writeOut = false;
            const unsigned tp = b.addTile(prev);
            TileUse out;
            out.tile = tile1d(dst, tb * seg, seg);
            out.readIn = false;
            out.writeOut = true;
            out.localOffset = 1088; // after the 258-word halo segment
            const unsigned to = b.addTile(out);
            // Wall row: streamed once, globally.
            TileUse wall;
            wall.tile =
                tile1d(matABase, (r + 1) * cols + tb * seg, seg);
            wall.readIn = true;
            wall.writeOut = false;
            wall.originallyGlobal = true;
            wall.localOffset = 2176;
            const unsigned tw = b.addTile(wall);

            for (unsigned w = 0; w < 8; ++w) {
                const auto elems = laneElems(w * 32, 32);
                b.accessTile(w, tp, elems, false);
                b.accessTile(w, tw, elems, false);
                b.compute(w, 2);
                        b.compute(w, 3);
                b.compute(w, 1, 1);
                b.accessTile(w, to, elems, true);
            }
            ker.blocks.push_back(b.build());
        }
        wl.phases.push_back(Phase::gpu(std::move(ker)));
    }

    wl.phases.push_back(cpuConsume(
        (rows % 2 == 0) ? matCBase : matBBase, 256, cfg.cpuCores));
    return wl;
}

// ---------------------------------------------------------------------
// SGEMM (Parboil): C = A x B, A 128x96, B 96x160
// ---------------------------------------------------------------------

Workload
makeSgemm(const AppConfig &cfg)
{
    const unsigned m = cfg.sgemmM, kk = cfg.sgemmK, nn = cfg.sgemmN;
    const unsigned t = cfg.sgemmTile;
    sim_assert(m % t == 0 && kk % t == 0 && nn % t == 0);

    Workload wl;
    wl.name = "SGEMM";
    wl.init = [=](FunctionalMem &fm) {
        initWords(fm, matABase, m * kk);
        initWords(fm, matBBase, kk * nn);
    };

    // The Parboil shared-memory kernel: each block computes one
    // 16x16 C tile; the k-loop re-stages a 16x16 B tile per step
    // (__syncthreads-delimited in the original; restage() lowers it
    // to copy loops, DMA transfers, or ChgMap per configuration).
    // A is streamed from global memory (registers in the original);
    // C accumulates in registers and is written once at the end.
    Kernel ker;
    ker.name = "sgemm_tiled";
    for (unsigned ti = 0; ti < m / t; ++ti) {
        for (unsigned tj = 0; tj < nn / t; ++tj) {
            TbBuilder b(cfg.org, 8);
            TileUse bs;
            bs.tile = tile2d(matBBase, nn, 0, tj * t, t, t);
            bs.readIn = true;
            bs.writeOut = false;
            const unsigned tb_tile = b.addTile(bs);
            TileUse as;
            as.tile = tile2d(matABase, kk, ti * t, 0, t, t);
            as.readIn = true;
            as.writeOut = false;
            as.originallyGlobal = true;
            as.localOffset = bs.tile.mappedBytes();
            const unsigned ta = b.addTile(as);
            TileUse cs;
            cs.tile = tile2d(matCBase, nn, ti * t, tj * t, t, t);
            cs.readIn = false;
            cs.writeOut = true;
            cs.originallyGlobal = true;
            cs.localOffset = as.localOffset + as.tile.mappedBytes();
            const unsigned tc = b.addTile(cs);

            for (unsigned kt = 0; kt < kk / t; ++kt) {
                if (kt > 0) {
                    b.restage(tb_tile, tile2d(matBBase, nn, kt * t,
                                              tj * t, t, t));
                    b.restage(ta, tile2d(matABase, kk, ti * t,
                                         kt * t, t, t));
                }
                for (unsigned r = 0; r < t; ++r) {
                    const unsigned w = r % 8;
                    b.accessTile(w, tb_tile, rowElems(r, t), false);
                    b.accessTile(w, ta, rowElems(r, t), false);
                    b.compute(w, 2);
                        b.compute(w, 3);
                    b.compute(w, 1, 1);
                }
            }
            for (unsigned r = 0; r < t; ++r)
                b.accessTile(r % 8, tc, rowElems(r, t), true);
            ker.blocks.push_back(b.build());
        }
    }
    wl.phases.push_back(Phase::gpu(std::move(ker)));

    wl.phases.push_back(cpuConsume(matCBase, 256, cfg.cpuCores));
    return wl;
}

// ---------------------------------------------------------------------
// Stencil (Parboil): 7-point stencil on 128x128x4, 4 iterations
// ---------------------------------------------------------------------

Workload
makeStencil(const AppConfig &cfg)
{
    const unsigned nx = cfg.stencilX, ny = cfg.stencilY,
                   nz = cfg.stencilZ;
    const unsigned t = 16;

    Workload wl;
    wl.name = "STENCIL";
    wl.init = [=](FunctionalMem &fm) {
        initWords(fm, matABase, nx * ny * nz);
        initWords(fm, matBBase, nx * ny * nz);
    };

    for (unsigned it = 0; it < cfg.stencilIters; ++it) {
        const Addr src = (it % 2 == 0) ? matABase : matBBase;
        const Addr dst = (it % 2 == 0) ? matBBase : matABase;
        Kernel ker;
        ker.name = "stencil_iter";
        for (unsigned z = 0; z < nz; ++z) {
            for (unsigned by = 0; by < ny / t; ++by) {
                for (unsigned bx = 0; bx < nx / t; ++bx) {
                    TbBuilder b(cfg.org, 8);
                    // The block's own 16x16 slab is staged (as the
                    // Parboil shared-memory kernel stages its
                    // blockDim-sized tile); the one-row halos are
                    // read from the global space.  Under StashG the
                    // staged input tile of iteration i+1 is exactly
                    // iteration i's output mapping of the ping-pong
                    // buffer, so the stash's replication optimization
                    // serves it locally.
                    TileUse in;
                    in.tile = tile2d(src, nx, by * t + z * ny, bx * t,
                                     t, t);
                    in.readIn = true;
                    in.writeOut = false;
                    const unsigned tin = b.addTile(in);
                    TileUse out;
                    out.tile = tile2d(dst, nx, by * t + z * ny,
                                      bx * t, t, t);
                    out.readIn = false;
                    out.writeOut = true;
                    out.originallyGlobal = true;
                    out.localOffset = 1024;
                    const unsigned tout = b.addTile(out);
                    unsigned thalo_n = tin, thalo_s = tin;
                    if (by > 0) {
                        TileUse halo;
                        halo.tile = tile2d(src, nx,
                                           by * t - 1 + z * ny,
                                           bx * t, 1, t);
                        halo.readIn = true;
                        halo.writeOut = false;
                        halo.originallyGlobal = true;
                        halo.convertible = false; // one-row, no reuse
                        halo.localOffset = 2048;
                        thalo_n = b.addTile(halo);
                    }
                    if ((by + 1) * t < ny) {
                        TileUse halo;
                        halo.tile = tile2d(src, nx,
                                           (by + 1) * t + z * ny,
                                           bx * t, 1, t);
                        halo.readIn = true;
                        halo.writeOut = false;
                        halo.originallyGlobal = true;
                        halo.convertible = false; // one-row, no reuse
                        halo.localOffset = 2112;
                        thalo_s = b.addTile(halo);
                    }

                    for (unsigned r = 0; r < t; ++r) {
                        const unsigned w = r % 8;
                        b.accessTile(w, tin, rowElems(r, t), false);
                        if (r > 0)
                            b.accessTile(w, tin, rowElems(r - 1, t),
                                         false);
                        else if (thalo_n != tin)
                            b.accessTile(w, thalo_n, rowElems(0, t),
                                         false);
                        if (r + 1 < t)
                            b.accessTile(w, tin, rowElems(r + 1, t),
                                         false);
                        else if (thalo_s != tin)
                            b.accessTile(w, thalo_s, rowElems(0, t),
                                         false);
                        b.compute(w, 2);
                        b.compute(w, 3);
                        b.compute(w, 1, 1);
                        b.accessTile(w, tout, rowElems(r, t), true);
                    }
                    ker.blocks.push_back(b.build());
                }
            }
        }
        wl.phases.push_back(Phase::gpu(std::move(ker)));
    }

    wl.phases.push_back(cpuConsume(
        (cfg.stencilIters % 2 == 0) ? matABase : matBBase, 256,
        cfg.cpuCores));
    return wl;
}

// ---------------------------------------------------------------------
// SURF (OpenSURF): interest-point responses over a 66 KB image
// ---------------------------------------------------------------------

Workload
makeSurf(const AppConfig &cfg)
{
    // Treat the image as 128 rows x (pixels/128) columns.
    const unsigned rows = 128;
    const unsigned cols = cfg.surfPixels / rows;
    const unsigned t = 16;

    Workload wl;
    wl.name = "SURF";
    wl.init = [=](FunctionalMem &fm) {
        initWords(fm, matABase, rows * cols); // integral image
    };

    Kernel ker;
    ker.name = "surf_hessian";
    for (unsigned br = 0; br < rows / t; ++br) {
        for (unsigned bc = 0; bc < cols / t; ++bc) {
            TbBuilder b(cfg.org, 8);
            TileUse img;
            img.tile = tile2d(matABase, cols, br * t, bc * t, t, t);
            img.readIn = true;
            img.writeOut = false;
            const unsigned ti = b.addTile(img);
            TileUse resp;
            resp.tile = tile2d(matCBase, cols, br * t, bc * t, t, t);
            resp.readIn = false;
            resp.writeOut = true;
            resp.originallyGlobal = true;
            resp.localOffset = img.tile.mappedBytes();
            const unsigned tr = b.addTile(resp);

            for (unsigned r = 0; r < t; ++r) {
                const unsigned w = r % 8;
                // Box-filter taps: several staged reads per output.
                b.accessTile(w, ti, rowElems(r, t), false);
                if (r > 0)
                    b.accessTile(w, ti, rowElems(r - 1, t), false);
                if (r + 1 < t)
                    b.accessTile(w, ti, rowElems(r + 1, t), false);
                b.compute(w, 3);
                b.compute(w, 2);
                        b.compute(w, 3);
                b.compute(w, 1, 1);
                b.accessTile(w, tr, rowElems(r, t), true);
            }
            ker.blocks.push_back(b.build());
        }
    }
    wl.phases.push_back(Phase::gpu(std::move(ker)));

    wl.phases.push_back(cpuConsume(matCBase, 256, cfg.cpuCores));
    return wl;
}

// ---------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------

std::vector<std::string>
applicationNames()
{
    return {"LUD", "SURF", "BP", "NW", "PF", "SGEMM", "STENCIL"};
}

Workload
makeApplication(const std::string &name, const AppConfig &cfg)
{
    if (name == "LUD")
        return makeLud(cfg);
    if (name == "SURF")
        return makeSurf(cfg);
    if (name == "BP")
        return makeBackprop(cfg);
    if (name == "NW")
        return makeNw(cfg);
    if (name == "PF")
        return makePathfinder(cfg);
    if (name == "SGEMM")
        return makeSgemm(cfg);
    if (name == "STENCIL")
        return makeStencil(cfg);
    fatal("unknown application: ", name);
}

} // namespace workloads
} // namespace stashsim
