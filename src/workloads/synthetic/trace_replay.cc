#include "workloads/synthetic/trace_replay.hh"

#include <algorithm>
#include <sstream>

#include "sim/log.hh"
#include "snapshot/snapshot.hh"
#include "workloads/kernel_builder.hh"

namespace stashsim
{
namespace workloads
{

namespace
{

/** Strict whole-token parse of a decimal or 0x-hex number. */
bool
parseU64(const std::string &t, std::uint64_t &out)
{
    std::size_t i = 0;
    std::uint64_t base = 10;
    if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
        base = 16;
        i = 2;
    }
    if (i >= t.size())
        return false;
    std::uint64_t v = 0;
    for (; i < t.size(); ++i) {
        const char c = t[i];
        std::uint64_t d;
        if (c >= '0' && c <= '9')
            d = std::uint64_t(c - '0');
        else if (base == 16 && c >= 'a' && c <= 'f')
            d = std::uint64_t(c - 'a') + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            d = std::uint64_t(c - 'A') + 10;
        else
            return false;
        if (v > (~std::uint64_t(0) - d) / base)
            return false;
        v = v * base + d;
    }
    out = v;
    return true;
}

bool
parseI32(const std::string &t, std::int32_t &out)
{
    std::string s = t;
    bool neg = false;
    if (!s.empty() && (s[0] == '+' || s[0] == '-')) {
        neg = s[0] == '-';
        s = s.substr(1);
    }
    std::uint64_t v = 0;
    if (!parseU64(s, v))
        return false;
    if (neg) {
        if (v > 0x8000'0000ull)
            return false;
        out = std::int32_t(-std::int64_t(v));
    } else {
        if (v > 0x7fff'ffffull)
            return false;
        out = std::int32_t(v);
    }
    return true;
}

/** Splits a comma-separated address list; empty items are errors. */
bool
parseAddrList(const std::string &t, std::vector<Addr> &out)
{
    out.clear();
    std::size_t start = 0;
    while (start <= t.size()) {
        const std::size_t comma = t.find(',', start);
        const std::string item =
            t.substr(start, comma == std::string::npos
                                ? std::string::npos
                                : comma - start);
        std::uint64_t v = 0;
        if (!parseU64(item, v))
            return false;
        out.push_back(v);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return !out.empty();
}

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

std::string
hexList(const std::vector<Addr> &addrs)
{
    std::string s;
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        if (i)
            s += ',';
        s += hexAddr(addrs[i]);
    }
    return s;
}

/** A word tile over `bytes` contiguous bytes at @p base. */
TileSpec
spanTile(Addr base, std::uint32_t words)
{
    TileSpec t;
    t.globalBase = base;
    t.fieldSize = wordBytes;
    t.objectSize = wordBytes;
    t.rowSize = words;
    t.strideSize = 0;
    t.numStrides = 1;
    t.isCoherent = true;
    return t;
}

} // namespace

std::uint64_t
TraceData::records() const
{
    std::uint64_t n = 0;
    for (const auto &p : phases) {
        for (const auto &s : p.perCu)
            n += s.size();
        for (const auto &s : p.perCore)
            n += s.size();
    }
    return n;
}

bool
parseTrace(const std::string &text, const TraceLimits &lim,
           TraceData &out, std::string &err)
{
    out = TraceData();
    std::istringstream is(text);
    std::string line;
    int lineNo = 0;
    bool sawHeader = false;
    TracePhase *cur = nullptr;

    struct MapDecl
    {
        std::uint32_t lo = 0;
        std::uint32_t bytes = 0;
        bool writable = false;
    };
    std::vector<std::vector<MapDecl>> maps;

    auto fail = [&](const std::string &m) {
        err = "line " + std::to_string(lineNo) + ": " + m;
        return false;
    };

    while (std::getline(is, line)) {
        ++lineNo;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::vector<std::string> tok;
        {
            std::istringstream ls(line);
            std::string t;
            while (ls >> t)
                tok.push_back(t);
        }
        if (tok.empty())
            continue;

        if (!sawHeader) {
            if (tok.size() != 2 || tok[0] != "stashtrace" ||
                tok[1] != "v1") {
                return fail("expected header 'stashtrace v1'");
            }
            sawHeader = true;
            continue;
        }

        if (tok[0] == "warmup") {
            if (cur)
                return fail("'warmup' inside a phase");
            std::uint64_t v = 0;
            if (tok.size() != 2 || !parseU64(tok[1], v) ||
                v > 1'000'000) {
                return fail("bad warmup count");
            }
            out.warmup = unsigned(v);
            continue;
        }

        if (tok[0] == "phase") {
            if (cur)
                return fail("nested 'phase'");
            TracePhase p;
            if (tok.size() == 3 && tok[1] == "gpu") {
                p.kind = Phase::Kind::Gpu;
                p.kernel = tok[2];
            } else if (tok.size() == 2 && tok[1] == "cpu") {
                p.kind = Phase::Kind::Cpu;
            } else {
                return fail(
                    "expected 'phase gpu <kernel>' or 'phase cpu'");
            }
            out.phases.push_back(std::move(p));
            cur = &out.phases.back();
            maps.assign(lim.maxCus, {});
            continue;
        }

        if (tok[0] == "endphase") {
            if (cur == nullptr)
                return fail("'endphase' outside a phase");
            if (tok.size() != 1)
                return fail("trailing tokens after 'endphase'");
            cur = nullptr;
            continue;
        }

        if (tok[0] == "cu") {
            if (!cur || cur->kind != Phase::Kind::Gpu)
                return fail("'cu' record outside a gpu phase");
            if (tok.size() < 3)
                return fail("truncated record");
            std::uint64_t id = 0;
            if (!parseU64(tok[1], id))
                return fail("bad cu id '" + tok[1] + "'");
            if (id >= lim.maxCus) {
                return fail("cu " + tok[1] +
                            " out of range (machine has " +
                            std::to_string(lim.maxCus) + " CUs)");
            }
            if (cur->perCu.size() <= id)
                cur->perCu.resize(std::size_t(id) + 1);

            const std::string &op = tok[2];
            TraceGpuOp rec;
            if (op == "compute") {
                std::uint64_t cyc = 0;
                if (tok.size() < 4 || tok.size() > 5 ||
                    !parseU64(tok[3], cyc) || cyc == 0 ||
                    cyc > 0xffff) {
                    return fail(
                        "'compute' takes <cycles 1..65535> "
                        "[<accDelta>]");
                }
                rec.kind = TraceGpuOp::Kind::Compute;
                rec.cycles = std::uint16_t(cyc);
                if (tok.size() == 5 &&
                    !parseI32(tok[4], rec.accDelta)) {
                    return fail("bad accumulator delta '" + tok[4] +
                                "'");
                }
            } else if (op == "ld" || op == "st" || op == "lld" ||
                       op == "lst") {
                const bool isStore = (op == "st" || op == "lst");
                const bool isLocal = (op == "lld" || op == "lst");
                const bool hasValue =
                    tok.size() == 6 && tok[4] == "=";
                if (!(tok.size() == 4 || (isStore && hasValue))) {
                    return fail("'" + op + "' takes <addr>[,...]" +
                                (isStore ? " [= <value>]" : ""));
                }
                if (!parseAddrList(tok[3], rec.addrs))
                    return fail("bad address list '" + tok[3] + "'");
                if (rec.addrs.size() > 32)
                    return fail("more than 32 lanes in one record");
                for (Addr a : rec.addrs) {
                    if (a % wordBytes) {
                        return fail("address " + hexAddr(a) +
                                    " is not word-aligned");
                    }
                }
                if (isLocal) {
                    for (Addr a : rec.addrs) {
                        const MapDecl *m = nullptr;
                        for (const auto &mm : maps[id]) {
                            if (a >= mm.lo &&
                                a + wordBytes <= mm.lo + mm.bytes) {
                                m = &mm;
                                break;
                            }
                        }
                        if (!m) {
                            return fail("local offset " + hexAddr(a) +
                                        " is not covered by any map");
                        }
                        if (isStore && !m->writable) {
                            return fail("lst at " + hexAddr(a) +
                                        " targets a read-only map");
                        }
                    }
                } else {
                    const Addr mn = *std::min_element(
                        rec.addrs.begin(), rec.addrs.end());
                    const Addr mx = *std::max_element(
                        rec.addrs.begin(), rec.addrs.end());
                    if (mx - mn > (Addr(1) << 28)) {
                        return fail("address spread exceeds 256 MiB "
                                    "in one record");
                    }
                }
                if (hasValue) {
                    std::uint64_t v = 0;
                    if (!parseU64(tok[5], v) || v > 0xffff'ffffull)
                        return fail("bad store value '" + tok[5] + "'");
                    rec.hasValue = true;
                    rec.value = std::uint32_t(v);
                }
                rec.kind = isLocal ? (isStore ? TraceGpuOp::Kind::Lst
                                              : TraceGpuOp::Kind::Lld)
                                   : (isStore ? TraceGpuOp::Kind::St
                                              : TraceGpuOp::Kind::Ld);
            } else if (op == "map") {
                std::uint64_t lo = 0, base = 0, bytes = 0;
                if (tok.size() != 7 || !parseU64(tok[3], lo) ||
                    !parseU64(tok[4], base) ||
                    !parseU64(tok[5], bytes)) {
                    return fail("'map' takes <localOffset> "
                                "<globalBase> <bytes> ro|rw");
                }
                if (lo % wordBytes || base % wordBytes ||
                    bytes == 0 || bytes % wordBytes) {
                    return fail("map geometry must be word-aligned "
                                "and non-empty");
                }
                // The stash requires chunk-aligned local bases;
                // demand it up front so a trace replays under every
                // organization.
                if (lo % 64) {
                    return fail("map local offset must be 64-byte "
                                "aligned");
                }
                if (lo + bytes > lim.localBytes) {
                    return fail(
                        "map exceeds the " +
                        std::to_string(lim.localBytes) +
                        "-byte local space");
                }
                if (tok[6] == "rw")
                    rec.writable = true;
                else if (tok[6] != "ro")
                    return fail("map mode must be 'ro' or 'rw'");
                if (maps[id].size() >= 4) {
                    return fail("more than 4 maps for cu " + tok[1] +
                                " in one phase");
                }
                rec.kind = TraceGpuOp::Kind::Map;
                rec.localOffset = std::uint32_t(lo);
                rec.globalBase = base;
                rec.bytes = std::uint32_t(bytes);
                maps[id].push_back({rec.localOffset, rec.bytes,
                                    rec.writable});
            } else {
                return fail("unknown opcode '" + op + "'");
            }
            cur->perCu[id].push_back(std::move(rec));
            continue;
        }

        if (tok[0] == "core") {
            if (!cur || cur->kind != Phase::Kind::Cpu)
                return fail("'core' record outside a cpu phase");
            if (tok.size() < 4)
                return fail("truncated record");
            std::uint64_t id = 0;
            if (!parseU64(tok[1], id))
                return fail("bad core id '" + tok[1] + "'");
            if (id >= lim.maxCpuCores) {
                return fail("core " + tok[1] +
                            " out of range (machine has " +
                            std::to_string(lim.maxCpuCores) +
                            " CPU cores)");
            }
            if (cur->perCore.size() <= id)
                cur->perCore.resize(std::size_t(id) + 1);

            CpuOp c;
            std::uint64_t a = 0;
            if (!parseU64(tok[3], a) || a % wordBytes)
                return fail("bad address '" + tok[3] + "'");
            c.addr = a;
            const bool hasValue = tok.size() == 6 && tok[4] == "=";
            std::uint64_t v = 0;
            if (hasValue &&
                (!parseU64(tok[5], v) || v > 0xffff'ffffull)) {
                return fail("bad value '" + tok[5] + "'");
            }
            if (tok[2] == "st") {
                if (!hasValue)
                    return fail("'st' takes <addr> = <value>");
                c.isStore = true;
                c.value = std::uint32_t(v);
            } else if (tok[2] == "ld") {
                if (!(tok.size() == 4 || hasValue))
                    return fail("'ld' takes <addr> [= <expect>]");
                if (hasValue) {
                    c.value = std::uint32_t(v);
                    c.checkValue = true;
                }
            } else {
                return fail("unknown opcode '" + tok[2] + "'");
            }
            cur->perCore[id].push_back(c);
            continue;
        }

        return fail("unknown directive '" + tok[0] + "'");
    }

    if (!sawHeader) {
        err = "missing 'stashtrace v1' header";
        return false;
    }
    if (cur)
        return fail("unterminated phase (missing 'endphase')");
    if (out.warmup > 0 && out.warmup >= out.phases.size()) {
        err = "warmup (" + std::to_string(out.warmup) +
              ") must be smaller than the phase count (" +
              std::to_string(out.phases.size()) + ")";
        return false;
    }
    return true;
}

std::string
writeTrace(const TraceData &t)
{
    std::ostringstream os;
    os << "stashtrace v1\n";
    os << "warmup " << t.warmup << "\n";
    for (const TracePhase &p : t.phases) {
        if (p.kind == Phase::Kind::Gpu) {
            os << "phase gpu "
               << (p.kernel.empty() ? "trace_kernel" : p.kernel)
               << "\n";
            for (std::size_t cu = 0; cu < p.perCu.size(); ++cu) {
                for (const TraceGpuOp &r : p.perCu[cu]) {
                    os << "cu " << cu << ' ';
                    switch (r.kind) {
                      case TraceGpuOp::Kind::Compute:
                        os << "compute " << r.cycles;
                        if (r.accDelta)
                            os << ' ' << r.accDelta;
                        break;
                      case TraceGpuOp::Kind::Ld:
                        os << "ld " << hexList(r.addrs);
                        break;
                      case TraceGpuOp::Kind::St:
                        os << "st " << hexList(r.addrs);
                        if (r.hasValue)
                            os << " = " << r.value;
                        break;
                      case TraceGpuOp::Kind::Lld:
                        os << "lld " << hexList(r.addrs);
                        break;
                      case TraceGpuOp::Kind::Lst:
                        os << "lst " << hexList(r.addrs);
                        if (r.hasValue)
                            os << " = " << r.value;
                        break;
                      case TraceGpuOp::Kind::Map:
                        os << "map " << hexAddr(r.localOffset) << ' '
                           << hexAddr(r.globalBase) << ' ' << r.bytes
                           << ' ' << (r.writable ? "rw" : "ro");
                        break;
                    }
                    os << "\n";
                }
            }
        } else {
            os << "phase cpu\n";
            for (std::size_t c = 0; c < p.perCore.size(); ++c) {
                for (const CpuOp &op : p.perCore[c]) {
                    os << "core " << c << ' ';
                    if (op.isStore) {
                        os << "st " << hexAddr(op.addr) << " = "
                           << op.value;
                    } else {
                        os << "ld " << hexAddr(op.addr);
                        if (op.checkValue)
                            os << " = " << op.value;
                    }
                    os << "\n";
                }
            }
        }
        os << "endphase\n";
    }
    return os.str();
}

std::uint64_t
traceHash(const TraceData &t)
{
    const std::string s = writeTrace(t);
    std::uint64_t h = 0xcbf2'9ce4'8422'2325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x1'0000'01b3ull;
    }
    return h;
}

Workload
makeTraceReplay(const TraceData &t, MemOrg org,
                const std::string &name)
{
    Workload wl;
    wl.name = name;
    wl.warmupPhases = t.warmup;

    for (const TracePhase &tp : t.phases) {
        if (tp.kind == Phase::Kind::Cpu) {
            wl.phases.push_back(Phase::cpu(tp.perCore));
            continue;
        }
        Kernel k;
        k.name = tp.kernel.empty() ? "trace_kernel" : tp.kernel;
        // One block per recorded CU index, in order, so block i lands
        // on CU i under the round-robin launch distribution.
        for (std::size_t cu = 0; cu < tp.perCu.size(); ++cu) {
            TbBuilder b(org, 1);
            struct MapRef
            {
                unsigned handle = 0;
                std::uint32_t lo = 0;
                std::uint32_t bytes = 0;
            };
            std::vector<MapRef> maps;
            for (const TraceGpuOp &r : tp.perCu[cu]) {
                switch (r.kind) {
                  case TraceGpuOp::Kind::Compute:
                    b.compute(0, r.cycles, r.accDelta);
                    break;
                  case TraceGpuOp::Kind::Map: {
                    TileUse u;
                    u.tile = spanTile(r.globalBase,
                                      r.bytes / wordBytes);
                    u.localOffset = r.localOffset;
                    u.readIn = true;
                    u.writeOut = r.writable;
                    maps.push_back({b.addTile(u), r.localOffset,
                                    r.bytes});
                    break;
                  }
                  case TraceGpuOp::Kind::Ld:
                  case TraceGpuOp::Kind::St: {
                    const bool st = r.kind == TraceGpuOp::Kind::St;
                    const Addr base = *std::min_element(
                        r.addrs.begin(), r.addrs.end());
                    const Addr top = *std::max_element(
                        r.addrs.begin(), r.addrs.end());
                    TileUse u;
                    u.tile = spanTile(
                        base,
                        std::uint32_t((top - base) / wordBytes) + 1);
                    u.readIn = !st;
                    u.writeOut = st;
                    u.originallyGlobal = true;
                    u.convertible = false; // raw addresses stay global
                    const unsigned h = b.addTile(u);
                    std::vector<std::uint32_t> elems;
                    for (Addr a : r.addrs) {
                        elems.push_back(
                            std::uint32_t((a - base) / wordBytes));
                    }
                    b.accessTile(0, h, elems, st, !r.hasValue,
                                 r.value);
                    break;
                  }
                  case TraceGpuOp::Kind::Lld:
                  case TraceGpuOp::Kind::Lst: {
                    const bool st = r.kind == TraceGpuOp::Kind::Lst;
                    const MapRef *m = nullptr;
                    for (const auto &mm : maps) {
                        if (r.addrs[0] >= mm.lo &&
                            r.addrs[0] + wordBytes <=
                                mm.lo + mm.bytes) {
                            m = &mm;
                            break;
                        }
                    }
                    if (!m) {
                        fatal("trace replay: local offset ",
                              r.addrs[0], " has no covering map");
                    }
                    std::vector<std::uint32_t> elems;
                    for (Addr a : r.addrs) {
                        if (a < m->lo ||
                            a + wordBytes > m->lo + m->bytes) {
                            fatal("trace replay: local offset ", a,
                                  " leaves its covering map");
                        }
                        elems.push_back(
                            std::uint32_t((a - m->lo) / wordBytes));
                    }
                    b.accessTile(0, m->handle, elems, st,
                                 !r.hasValue, r.value);
                    break;
                  }
                }
            }
            k.blocks.push_back(b.build());
        }
        wl.phases.push_back(Phase::gpu(std::move(k)));
    }

    const std::uint64_t h = traceHash(t);
    const std::uint64_t recs = t.records();
    wl.snapshotState = [h, recs](SnapshotWriter &w) {
        w.u64(h);
        w.u64(recs);
    };
    wl.restoreState = [h, recs](SnapshotReader &r) {
        r.require(r.u64() == h,
                  "trace identity does not match the snapshot");
        r.require(r.u64() == recs, "trace record count mismatch");
    };
    return wl;
}

TraceData
traceFromWorkload(const Workload &wl, unsigned num_cus)
{
    sim_assert(num_cus > 0);
    TraceData t;
    t.warmup = wl.warmupPhases;
    for (const Phase &ph : wl.phases) {
        TracePhase tp;
        if (ph.kind == Phase::Kind::Cpu) {
            tp.kind = Phase::Kind::Cpu;
            tp.perCore = ph.cpuWork;
            // Replay has no functional init image, so recorded value
            // checks would fail spuriously; keep the timed loads,
            // drop the expectations.
            for (auto &core : tp.perCore) {
                for (auto &op : core) {
                    if (!op.isStore) {
                        op.checkValue = false;
                        op.value = 0;
                    }
                }
            }
        } else {
            tp.kind = Phase::Kind::Gpu;
            tp.kernel = ph.kernel.name.empty() ? "trace_kernel"
                                               : ph.kernel.name;
            for (auto &c : tp.kernel) {
                if (c == ' ' || c == '\t')
                    c = '_';
            }
            const auto &blocks = ph.kernel.blocks;
            tp.perCu.resize(
                std::min<std::size_t>(num_cus, blocks.size()));
            for (std::size_t blk = 0; blk < blocks.size(); ++blk) {
                auto &stream = tp.perCu[blk % num_cus];
                for (const auto &warp : blocks[blk].warps) {
                    for (const WarpOp &op : warp) {
                        TraceGpuOp rec;
                        switch (op.kind) {
                          case OpKind::Compute:
                            rec.kind = TraceGpuOp::Kind::Compute;
                            rec.cycles = op.cycles;
                            rec.accDelta = op.accDelta;
                            break;
                          case OpKind::GlobalLd:
                            rec.kind = TraceGpuOp::Kind::Ld;
                            rec.addrs = op.addrs;
                            break;
                          case OpKind::GlobalSt:
                            rec.kind = TraceGpuOp::Kind::St;
                            rec.addrs = op.addrs;
                            rec.hasValue = !op.storeAcc;
                            rec.value = op.value;
                            break;
                          case OpKind::Barrier:
                            // One serial stream per CU: barriers are
                            // meaningless after linearization.
                            continue;
                          default:
                            fatal("trace recording requires a "
                                  "cache-organization build (found ",
                                  opKindName(op.kind), " op)");
                        }
                        stream.push_back(std::move(rec));
                    }
                }
            }
        }
        t.phases.push_back(std::move(tp));
    }
    return t;
}

const char *
demoTrace()
{
    return R"(stashtrace v1
# Built-in demo: a CPU produce phase, one GPU kernel spread over two
# CUs (a staged rw map plus raw global traffic), and a checked CPU
# consume phase.
warmup 1
phase cpu
core 0 st 0x10000 = 41
core 0 st 0x10004 = 7
core 0 st 0x20000 = 5
endphase
phase gpu demo_kernel
cu 0 map 0x0 0x10000 64 rw
cu 0 compute 4
cu 0 lld 0x0,0x4
cu 0 compute 2 1
cu 0 lst 0x0,0x4
cu 0 st 0x30000 = 9
cu 1 ld 0x20000
cu 1 compute 3 2
cu 1 st 0x20000
endphase
phase cpu
core 0 ld 0x10000 = 42
core 0 ld 0x10004 = 8
core 0 ld 0x20000 = 7
core 0 ld 0x30000 = 9
endphase
)";
}

} // namespace workloads
} // namespace stashsim
