/**
 * @file
 * Parameterized synthetic traffic workloads (ROADMAP item 1).
 *
 * Four kernel shapes the paper never ran, all built on the portable
 * Workload/TbBuilder API so every memory organization lowers them the
 * same way it lowers the paper's benchmarks:
 *
 *  - SynthMix:     a Graphite-style synthetic memory generator —
 *    tunable read-only-shared / read-write-shared / private access
 *    mixes, access counts, and outstanding-request depth, with
 *    mt19937_64-seeded address streams.  Kernels alternate produce
 *    (each block writes its own read-write slice) and consume (each
 *    block reads a rotating peer's slice) phases, so the read-write-
 *    shared category migrates data between CUs through the stash
 *    while staying data-race-free.
 *  - GraphGather:  CSR-style graph traversal — a staged column-index
 *    slice drives an irregular gather from a global vertex-value
 *    array into a staged per-block output slice; iterations ping-pong
 *    the value arrays.
 *  - AttnScatter:  attention-style gather/scatter — each block stages
 *    its queries and an output slice, then walks a random sequence of
 *    key-pool chunks via mid-kernel re-staging (ChgMap on the stash,
 *    DMA refills on ScratchGD, copy loops on scratchpads), gathering
 *    at random offsets within each chunk.
 *  - Stencil2D:    a 5-point 2D stencil over row bands with staged
 *    halo-read tiles and fully-overwritten output bands, ping-ponging
 *    grids across iterations.
 *
 * Every workload validates its final memory image against a host-side
 * model replayed from the same seeded generation, and carries the
 * Workload snapshot hooks (spec hash + SynthEngine stream), so the
 * whole family is deterministic and checkpoint/farm-safe.
 */

#ifndef STASHSIM_WORKLOADS_SYNTHETIC_SYNTH_WORKLOADS_HH
#define STASHSIM_WORKLOADS_SYNTHETIC_SYNTH_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "config/system_config.hh"
#include "workloads/workload.hh"
#include "workloads/workload_factory.hh"

namespace stashsim
{
namespace workloads
{

/**
 * Every knob of the synthetic family.  Defaults are the Full-scale
 * sizing; scaledSynthConfig() derives Quick and Smoke.
 */
struct SynthConfig
{
    MemOrg org = MemOrg::Scratch;
    unsigned cpuCores = 1;
    std::uint64_t seed = 1;

    /** @{ SynthMix: the Graphite-style generator. */
    unsigned mixBlocks = 15;  //!< one per CU on the Table 2 machine
    unsigned mixWarps = 2;    //!< warps per block
    unsigned mixKernels = 4;  //!< GPU phases (produce/consume pairs)
    unsigned mixAccesses = 96; //!< access records per warp per kernel
    unsigned mixDepth = 4;    //!< outstanding accesses per burst
    unsigned mixComputeCycles = 8; //!< compute cycles between bursts
    unsigned mixRoPct = 40;   //!< % read-only-shared accesses
    unsigned mixRwPct = 30;   //!< % read-write-shared (rest private)
    std::uint32_t mixRoWords = 8192;   //!< shared read-only pool
    std::uint32_t mixSliceWords = 512; //!< per-(block,warp) rw slice
    std::uint32_t mixPrivWords = 512;  //!< per-(block,warp) private
    /** @} */

    /** @{ GraphGather: CSR irregular gather. */
    std::uint32_t graphVerts = 3840; //!< divisible by graphBlocks
    unsigned graphDegree = 8;
    unsigned graphIters = 3;
    unsigned graphBlocks = 15;
    unsigned graphWarps = 2;
    /** @} */

    /** @{ AttnScatter: chunked gather/scatter with re-staging. */
    std::uint32_t attnQueries = 480; //!< divisible by attnBlocks
    std::uint32_t attnKeyWords = 4096;
    std::uint32_t attnChunkWords = 512; //!< divides attnKeyWords
    unsigned attnChunks = 4;  //!< chunks visited per block
    unsigned attnGathers = 4; //!< gathers per query per chunk
    unsigned attnBlocks = 15;
    /** @} */

    /** @{ Stencil2D: 5-point stencil over row bands. */
    std::uint32_t stencilX = 256;
    std::uint32_t stencilY = 60; //!< divisible by stencilBlocks
    unsigned stencilIters = 4;
    unsigned stencilBlocks = 15;
    unsigned stencilWarps = 2;
    /** @} */
};

/** The Quick/Smoke sizings (Full = SynthConfig defaults). */
SynthConfig scaledSynthConfig(const WorkloadParams &p);

/** The registered synthetic workload names. */
std::vector<std::string> syntheticNames();

/** @{ Individual makers. */
Workload makeSynthMix(const SynthConfig &cfg);
Workload makeGraphGather(const SynthConfig &cfg);
Workload makeAttnScatter(const SynthConfig &cfg);
Workload makeStencil2D(const SynthConfig &cfg);
/** @} */

/** Builds synthetic workload @p name; fatal() when unknown. */
Workload makeSynthetic(const std::string &name, const SynthConfig &cfg);

/** Registers the synthetic family (and the trace-replay demo). */
void registerSyntheticWorkloads(WorkloadFactory &factory);

} // namespace workloads
} // namespace stashsim

#endif // STASHSIM_WORKLOADS_SYNTHETIC_SYNTH_WORKLOADS_HH
