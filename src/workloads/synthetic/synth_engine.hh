/**
 * @file
 * Seeded address-stream generator for the synthetic workloads.
 *
 * A thin mt19937_64 wrapper whose whole point is reproducibility:
 * every draw is counted, and the stream position serializes into
 * snapshots exactly like the fault injector's RNG (DESIGN.md §11), so
 * a workload generated from (spec, seed) is bit-identical no matter
 * where — serial, sharded, restored mid-sweep, or on a farm worker.
 */

#ifndef STASHSIM_WORKLOADS_SYNTHETIC_SYNTH_ENGINE_HH
#define STASHSIM_WORKLOADS_SYNTHETIC_SYNTH_ENGINE_HH

#include <cstdint>
#include <random>

namespace stashsim
{

class SnapshotWriter;
class SnapshotReader;

namespace workloads
{

/**
 * Deterministic random stream; see file comment.
 */
class SynthEngine
{
  public:
    explicit SynthEngine(std::uint64_t seed)
        : _seed(seed), rng(seed)
    {
    }

    /** The next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        ++_draws;
        return rng();
    }

    /** A draw reduced to [0, bound); bound must be nonzero. */
    std::uint32_t
    range(std::uint32_t bound)
    {
        return std::uint32_t(next() % bound);
    }

    /** True with probability pct/100. */
    bool
    pct(unsigned p)
    {
        return range(100) < p;
    }

    std::uint64_t seedValue() const { return _seed; }
    std::uint64_t draws() const { return _draws; }

    /** Serializes seed, draw count, and the mt19937_64 stream. */
    void snapshot(SnapshotWriter &w) const;
    /** Restores snapshot(); requires the seed to match. */
    void restore(SnapshotReader &r);

  private:
    std::uint64_t _seed;
    std::uint64_t _draws = 0;
    std::mt19937_64 rng;
};

} // namespace workloads
} // namespace stashsim

#endif // STASHSIM_WORKLOADS_SYNTHETIC_SYNTH_ENGINE_HH
