#include "workloads/synthetic/synth_engine.hh"

#include <sstream>

#include "snapshot/snapshot.hh"

namespace stashsim
{
namespace workloads
{

void
SynthEngine::snapshot(SnapshotWriter &w) const
{
    w.u64(_seed);
    w.u64(_draws);
    // The standard stream operators are the only portable mt19937_64
    // state accessors; the decimal rendering is stable for a given
    // libstdc++, which is all determinism-across-runs needs.
    std::ostringstream os;
    os << rng;
    w.str(os.str());
}

void
SynthEngine::restore(SnapshotReader &r)
{
    const std::uint64_t seed = r.u64();
    r.require(seed == _seed,
              "synthetic engine seed does not match the snapshot");
    _draws = r.u64();
    std::istringstream is(r.str());
    is >> rng;
    r.require(bool(is), "mt19937_64 state malformed");
}

} // namespace workloads
} // namespace stashsim
