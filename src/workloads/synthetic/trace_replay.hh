/**
 * @file
 * stashtrace v1: a versioned line format of per-CU timed
 * load/store/staging records, replayable as a Workload.
 *
 * The format lets arbitrary recorded access streams run through the
 * stash.  Grammar (see DESIGN.md §14.3 for the full treatment):
 *
 *     stashtrace v1
 *     warmup <n>
 *     phase gpu <kernel> | phase cpu
 *       cu <id> compute <cycles> [<accDelta>]
 *       cu <id> ld <addr>[,<addr>...]
 *       cu <id> st <addr>[,...] [= <value>]
 *       cu <id> map <localOffset> <globalBase> <bytes> ro|rw
 *       cu <id> lld <local>[,...]
 *       cu <id> lst <local>[,...] [= <value>]
 *       core <id> ld <addr> [= <expect>]
 *       core <id> st <addr> = <value>
 *     endphase
 *
 * `map` is the staging/DMA record: it declares a local tile over
 * `bytes` of global memory, lowered per organization exactly like a
 * TileUse — copy loops on scratchpads, DMA descriptors on ScratchGD,
 * AddMap on the stash, plain global addressing on cache.  `lld`/`lst`
 * access the staged bytes by local offset; `ld`/`st` are raw global
 * accesses.  A store without `= value` writes the lane accumulator
 * (loads set it, compute shifts it by accDelta), so recorded dataflow
 * replays, not just addresses.  `#` starts a comment; numbers are
 * decimal or 0x-hex.  The parser is strict: truncated records, bad
 * opcodes, malformed numbers, out-of-range CU/core ids, unaligned or
 * unmapped addresses, and >32-lane records are all structured errors
 * naming the line.
 */

#ifndef STASHSIM_WORKLOADS_SYNTHETIC_TRACE_REPLAY_HH
#define STASHSIM_WORKLOADS_SYNTHETIC_TRACE_REPLAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "config/system_config.hh"
#include "workloads/workload.hh"

namespace stashsim
{
namespace workloads
{

/** Validation bounds; defaults match the Table 2 application machine. */
struct TraceLimits
{
    unsigned maxCus = 15;
    unsigned maxCpuCores = 1;
    std::uint32_t localBytes = 16 * 1024;
};

/** One parsed GPU record. */
struct TraceGpuOp
{
    enum class Kind : std::uint8_t
    {
        Compute,
        Ld,  //!< global load
        St,  //!< global store
        Map, //!< staging/DMA declaration
        Lld, //!< staged-local load
        Lst, //!< staged-local store
    };

    Kind kind = Kind::Compute;
    std::uint16_t cycles = 1;   //!< Compute
    std::int32_t accDelta = 0;  //!< Compute
    std::vector<Addr> addrs;    //!< Ld/St VAs; Lld/Lst local offsets
    bool hasValue = false;      //!< St/Lst explicit value
    std::uint32_t value = 0;
    std::uint32_t localOffset = 0; //!< Map
    Addr globalBase = 0;           //!< Map
    std::uint32_t bytes = 0;       //!< Map
    bool writable = false;         //!< Map: rw vs ro
};

/** One parsed phase. */
struct TracePhase
{
    Phase::Kind kind = Phase::Kind::Gpu;
    std::string kernel;                         //!< Kind::Gpu
    std::vector<std::vector<TraceGpuOp>> perCu; //!< Kind::Gpu
    std::vector<std::vector<CpuOp>> perCore;    //!< Kind::Cpu
};

/** A parsed trace. */
struct TraceData
{
    unsigned warmup = 0;
    std::vector<TracePhase> phases;

    /** Total records, for inventory/diagnostics. */
    std::uint64_t records() const;
};

/**
 * Parses @p text; returns false with a line-numbered message in
 * @p err on any malformed input (see file comment for what is
 * checked).
 */
bool parseTrace(const std::string &text, const TraceLimits &lim,
                TraceData &out, std::string &err);

/** Renders @p t in canonical form (a parse/write fixed point). */
std::string writeTrace(const TraceData &t);

/** FNV-1a identity of the canonical rendering. */
std::uint64_t traceHash(const TraceData &t);

/**
 * Lowers @p t into a runnable Workload for @p org.  One thread block
 * per recorded CU (block i lands on CU i), one warp per block.
 * Carries snapshot hooks pinning the trace identity.
 */
Workload makeTraceReplay(const TraceData &t, MemOrg org,
                         const std::string &name = "TraceReplay");

/**
 * Records a built workload as a trace.  The workload must be built
 * for the cache organization (every access global); block b's warp
 * streams are concatenated onto CU b % @p num_cus in warp order —
 * a linearization, so the replay is a derived workload, not a
 * cycle-accurate transcript.  Value checks are dropped (replay has
 * no functional init image); store values and accumulator dataflow
 * are preserved.
 */
TraceData traceFromWorkload(const Workload &wl, unsigned num_cus);

/** The built-in demo trace behind the TraceReplay registry entry. */
const char *demoTrace();

} // namespace workloads
} // namespace stashsim

#endif // STASHSIM_WORKLOADS_SYNTHETIC_TRACE_REPLAY_HH
