#include "workloads/synthetic/synth_workloads.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>

#include "sim/log.hh"
#include "snapshot/snapshot.hh"
#include "workloads/kernel_builder.hh"
#include "workloads/synthetic/synth_engine.hh"
#include "workloads/synthetic/trace_replay.hh"

namespace stashsim
{
namespace workloads
{

namespace
{

/**
 * Virtual base addresses of the synthetic arrays — above the
 * application range (0x4000'0000..0x7fff'ffff) so nothing aliases
 * when tooling compares traces across workload families.
 */
constexpr Addr roBase = 0x8000'0000;       //!< SynthMix read-only pool
constexpr Addr rwBase = 0x8400'0000;       //!< SynthMix rw-shared pool
constexpr Addr privBase = 0x8800'0000;     //!< SynthMix private pool
constexpr Addr graphColBase = 0x8c00'0000; //!< CSR column indices
constexpr Addr graphABase = 0x9000'0000;   //!< vertex values (ping)
constexpr Addr graphBBase = 0x9400'0000;   //!< vertex values (pong)
constexpr Addr attnQBase = 0x9800'0000;    //!< query vector
constexpr Addr attnKBase = 0x9c00'0000;    //!< key pool
constexpr Addr attnOutBase = 0xa000'0000;  //!< attention output
constexpr Addr stencilABase = 0xa400'0000; //!< grid (ping)
constexpr Addr stencilBBase = 0xa800'0000; //!< grid (pong)

Addr
wordVa(Addr base, std::uint32_t i)
{
    return base + Addr(i) * wordBytes;
}

/** A contiguous scalar-word tile over [first, first+count). */
TileSpec
wordTile(Addr base, std::uint32_t first, std::uint32_t count)
{
    TileSpec t;
    t.globalBase = base + Addr(first) * wordBytes;
    t.fieldSize = wordBytes;
    t.objectSize = wordBytes;
    t.rowSize = count;
    t.strideSize = 0;
    t.numStrides = 1;
    t.isCoherent = true;
    return t;
}

/** Deterministic initial value of the word at @p a. */
std::uint32_t
initVal(Addr a)
{
    return std::uint32_t(a >> 2) * 2654435761u + 12345;
}

/**
 * The expected final memory image, built alongside generation.  An
 * ordered map so validation error messages are deterministic.
 */
using Model = std::map<Addr, std::uint32_t>;

void
addArray(Model &m, Addr base, const std::vector<std::uint32_t> &v)
{
    for (std::uint32_t i = 0; i < v.size(); ++i)
        m[wordVa(base, i)] = v[i];
}

std::function<bool(FunctionalMem &, std::vector<std::string> &)>
modelValidator(std::shared_ptr<const Model> m)
{
    return [m](FunctionalMem &fm, std::vector<std::string> &errors) {
        bool ok = true;
        for (const auto &kv : *m) {
            const std::uint32_t got = fm.readWord(kv.first);
            if (got != kv.second) {
                if (errors.size() < 8) {
                    std::ostringstream os;
                    os << "word 0x" << std::hex << kv.first
                       << ": got 0x" << got << ", want 0x"
                       << kv.second;
                    errors.push_back(os.str());
                }
                ok = false;
            }
        }
        return ok;
    };
}

/** CPU phase writing initVal() to every @p step'th word of a pool. */
std::vector<std::vector<CpuOp>>
cpuWriteWords(Addr base, std::uint32_t n, std::uint32_t step,
              unsigned cores)
{
    std::vector<std::vector<CpuOp>> work(std::max(1u, cores));
    std::size_t idx = 0;
    for (std::uint32_t i = 0; i < n; i += step, ++idx) {
        CpuOp op;
        op.addr = wordVa(base, i);
        op.isStore = true;
        op.value = initVal(op.addr);
        work[idx % work.size()].push_back(op);
    }
    return work;
}

/** CPU phase checking every @p step'th word against the model. */
std::vector<std::vector<CpuOp>>
cpuCheckWords(const Model &m, Addr base, std::uint32_t n,
              std::uint32_t step, unsigned cores)
{
    std::vector<std::vector<CpuOp>> work(std::max(1u, cores));
    std::size_t idx = 0;
    for (std::uint32_t i = 0; i < n; i += step, ++idx) {
        CpuOp op;
        op.addr = wordVa(base, i);
        op.isStore = false;
        op.value = m.at(op.addr);
        op.checkValue = true;
        work[idx % work.size()].push_back(op);
    }
    return work;
}

/** FNV-1a over a list of 64-bit values (the spec fingerprint). */
std::uint64_t
specHash(std::initializer_list<std::uint64_t> vs)
{
    std::uint64_t h = 0xcbf2'9ce4'8422'2325ull;
    for (std::uint64_t v : vs) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x1'0000'01b3ull;
        }
    }
    return h;
}

/**
 * Installs the checkpoint identity hooks: the spec hash pins the
 * parameterization (restoring under a differently-sized twin fails
 * loudly), the engine pins seed + stream position.
 */
void
attachSnapshotHooks(Workload &wl, std::shared_ptr<SynthEngine> eng,
                    std::uint64_t spec_hash)
{
    wl.snapshotState = [eng, spec_hash](SnapshotWriter &w) {
        w.u64(spec_hash);
        eng->snapshot(w);
    };
    wl.restoreState = [eng, spec_hash](SnapshotReader &r) {
        r.require(r.u64() == spec_hash,
                  "synthetic spec hash does not match the snapshot");
        eng->restore(r);
    };
}

} // namespace

// ---------------------------------------------------------------------
// SynthMix — the Graphite-style generator
// ---------------------------------------------------------------------

Workload
makeSynthMix(const SynthConfig &cfg)
{
    const unsigned B = cfg.mixBlocks;
    const unsigned W = cfg.mixWarps;
    const unsigned cores = std::max(1u, cfg.cpuCores);
    const std::uint32_t slice = cfg.mixSliceWords;
    const std::uint32_t priv = cfg.mixPrivWords;
    const std::uint32_t roWords = cfg.mixRoWords;
    const std::uint32_t rwWords = B * W * slice;
    const std::uint32_t privWords = B * W * priv;
    sim_assert(cfg.mixRoPct + cfg.mixRwPct <= 100);
    sim_assert(slice >= 32 && priv >= 32 && roWords >= 32);
    sim_assert(cfg.mixDepth >= 1);

    auto eng = std::make_shared<SynthEngine>(cfg.seed);
    auto model = std::make_shared<Model>();
    for (std::uint32_t i = 0; i < rwWords; ++i)
        (*model)[wordVa(rwBase, i)] = initVal(wordVa(rwBase, i));
    for (std::uint32_t i = 0; i < privWords; ++i)
        (*model)[wordVa(privBase, i)] = initVal(wordVa(privBase, i));

    Workload wl;
    wl.name = "SynthMix";
    wl.init = [roWords, rwWords, privWords](FunctionalMem &fm) {
        for (std::uint32_t i = 0; i < roWords; ++i)
            fm.writeWord(wordVa(roBase, i), initVal(wordVa(roBase, i)));
        for (std::uint32_t i = 0; i < rwWords; ++i)
            fm.writeWord(wordVa(rwBase, i), initVal(wordVa(rwBase, i)));
        for (std::uint32_t i = 0; i < privWords; ++i) {
            fm.writeWord(wordVa(privBase, i),
                         initVal(wordVa(privBase, i)));
        }
    };

    // CPU produce phase: warm the communicated input through the
    // coherent CPU L1s (same values as init, like the microbenches).
    wl.phases.push_back(
        Phase::cpu(cpuWriteWords(rwBase, rwWords, 4, cores)));
    wl.warmupPhases = 1;

    for (unsigned k = 0; k < cfg.mixKernels; ++k) {
        // Produce kernels write each block's own read-write slice;
        // consume kernels read a rotating peer's slice — the
        // read-write-shared category migrates CU-to-CU across the
        // phase boundary without ever racing within one.
        const bool produce = (k % 2 == 0);
        Kernel kern;
        kern.name = produce ? "synthmix_produce" : "synthmix_consume";
        for (unsigned b = 0; b < B; ++b) {
            TbBuilder tb(cfg.org, W);

            TileUse ro;
            ro.tile = wordTile(roBase, 0, roWords);
            ro.readIn = true;
            ro.writeOut = false;
            ro.originallyGlobal = true;
            ro.convertible = false; // shared across blocks: stays global
            const unsigned tRo = tb.addTile(ro);

            TileUse rw;
            const unsigned owner =
                produce ? b : (b + 1 + k / 2) % B;
            rw.tile = wordTile(rwBase, owner * W * slice, W * slice);
            rw.localOffset = 0;
            rw.readIn = true;
            rw.writeOut = produce;
            const unsigned tRw = tb.addTile(rw);

            TileUse pv;
            pv.tile = wordTile(privBase, b * W * priv, W * priv);
            pv.localOffset = W * slice * wordBytes;
            pv.readIn = true;
            pv.writeOut = true;
            const unsigned tPriv = tb.addTile(pv);

            for (unsigned w = 0; w < W; ++w) {
                unsigned burst = 0;
                for (unsigned a = 0; a < cfg.mixAccesses; ++a) {
                    const unsigned cat = eng->range(100);
                    if (cat < cfg.mixRoPct) {
                        // Read-only-shared: random per-lane gather.
                        std::vector<std::uint32_t> elems;
                        for (unsigned l = 0; l < 32; ++l)
                            elems.push_back(eng->range(roWords));
                        tb.accessTile(w, tRo, elems, false);
                    } else if (cat < cfg.mixRoPct + cfg.mixRwPct) {
                        if (produce) {
                            // Store to this warp's own sub-slice with
                            // an explicit generator value, tracked in
                            // the model (single writer per word).
                            const std::uint32_t start =
                                w * slice + eng->range(slice - 31);
                            const std::uint32_t v =
                                std::uint32_t(eng->next());
                            tb.accessTile(w, tRw, laneElems(start, 32),
                                          true, false, v);
                            for (unsigned l = 0; l < 32; ++l) {
                                (*model)[wordVa(
                                    rwBase, owner * W * slice + start +
                                                l)] = v;
                            }
                        } else {
                            const std::uint32_t start =
                                eng->range(W * slice - 31);
                            tb.accessTile(w, tRw, laneElems(start, 32),
                                          false);
                        }
                    } else {
                        // Private: this warp's own segment.
                        const std::uint32_t start =
                            w * priv + eng->range(priv - 31);
                        if (eng->range(2) == 1) {
                            const std::uint32_t v =
                                std::uint32_t(eng->next());
                            tb.accessTile(w, tPriv,
                                          laneElems(start, 32), true,
                                          false, v);
                            for (unsigned l = 0; l < 32; ++l) {
                                (*model)[wordVa(
                                    privBase, b * W * priv + start +
                                                  l)] = v;
                            }
                        } else {
                            tb.accessTile(w, tPriv,
                                          laneElems(start, 32), false);
                        }
                    }
                    if (++burst == cfg.mixDepth) {
                        tb.compute(w, cfg.mixComputeCycles);
                        burst = 0;
                    }
                }
                if (burst)
                    tb.compute(w, cfg.mixComputeCycles);
            }
            kern.blocks.push_back(tb.build());
        }
        wl.phases.push_back(Phase::gpu(std::move(kern)));
    }

    wl.phases.push_back(
        Phase::cpu(cpuCheckWords(*model, rwBase, rwWords, 8, cores)));
    wl.validate = modelValidator(model);
    attachSnapshotHooks(
        wl, eng,
        specHash({1, cfg.seed, B, W, cfg.mixKernels, cfg.mixAccesses,
                  cfg.mixDepth, cfg.mixComputeCycles, cfg.mixRoPct,
                  cfg.mixRwPct, roWords, slice, priv, cores}));
    return wl;
}

// ---------------------------------------------------------------------
// GraphGather — CSR irregular gather
// ---------------------------------------------------------------------

Workload
makeGraphGather(const SynthConfig &cfg)
{
    const std::uint32_t V = cfg.graphVerts;
    const unsigned deg = cfg.graphDegree;
    const unsigned B = cfg.graphBlocks;
    const unsigned W = cfg.graphWarps;
    const unsigned iters = cfg.graphIters;
    const unsigned cores = std::max(1u, cfg.cpuCores);
    sim_assert(V % B == 0 && iters >= 1 && deg >= 1);
    const std::uint32_t perB = V / B;
    sim_assert(perB % W == 0);
    const std::uint32_t perW = perB / W;

    auto eng = std::make_shared<SynthEngine>(cfg.seed);
    // The host-side graph: fixed out-degree CSR column indices.
    auto col = std::make_shared<std::vector<std::uint32_t>>(
        std::size_t(V) * deg);
    for (auto &c : *col)
        c = eng->range(V);

    std::vector<std::uint32_t> va(V), vb(V, 0);
    for (std::uint32_t v = 0; v < V; ++v)
        va[v] = initVal(wordVa(graphABase, v));

    Workload wl;
    wl.name = "GraphGather";
    wl.init = [V, deg, col](FunctionalMem &fm) {
        for (std::uint32_t i = 0; i < std::uint32_t(V) * deg; ++i)
            fm.writeWord(wordVa(graphColBase, i), (*col)[i]);
        for (std::uint32_t v = 0; v < V; ++v)
            fm.writeWord(wordVa(graphABase, v),
                         initVal(wordVa(graphABase, v)));
    };

    wl.phases.push_back(Phase::cpu(cpuWriteWords(graphABase, V, 1,
                                                 cores)));
    wl.warmupPhases = 1;

    for (unsigned it = 0; it < iters; ++it) {
        const Addr src = (it % 2 == 0) ? graphABase : graphBBase;
        const Addr dst = (it % 2 == 0) ? graphBBase : graphABase;
        const std::vector<std::uint32_t> &srcV =
            (it % 2 == 0) ? va : vb;
        std::vector<std::uint32_t> &dstV = (it % 2 == 0) ? vb : va;

        Kernel kern;
        kern.name = "graph_gather";
        for (unsigned b = 0; b < B; ++b) {
            TbBuilder tb(cfg.org, W);

            // The block's column-index slice streams through the
            // local space; the vertex-value array is gathered
            // irregularly and stays global everywhere (no per-block
            // reuse to exploit).
            TileUse cu;
            cu.tile = wordTile(graphColBase, b * perB * deg,
                               perB * deg);
            cu.localOffset = 0;
            cu.readIn = true;
            cu.writeOut = false;
            const unsigned tCol = tb.addTile(cu);

            TileUse su;
            su.tile = wordTile(src, 0, V);
            su.readIn = true;
            su.writeOut = false;
            su.originallyGlobal = true;
            su.convertible = false;
            const unsigned tSrc = tb.addTile(su);

            TileUse du;
            du.tile = wordTile(dst, b * perB, perB);
            du.localOffset = perB * deg * wordBytes;
            du.readIn = false; // every owned vertex is overwritten
            du.writeOut = true;
            const unsigned tDst = tb.addTile(du);

            for (unsigned w = 0; w < W; ++w) {
                for (std::uint32_t g = 0; g < perW; g += 32) {
                    const std::uint32_t lanes =
                        std::min<std::uint32_t>(32, perW - g);
                    const std::uint32_t vrel0 = w * perW + g;
                    for (unsigned j = 0; j < deg; ++j) {
                        std::vector<std::uint32_t> ce, ge;
                        for (std::uint32_t l = 0; l < lanes; ++l) {
                            ce.push_back((vrel0 + l) * deg + j);
                            ge.push_back((*col)[std::size_t(
                                             b * perB + vrel0 + l) *
                                             deg + j]);
                        }
                        tb.accessTile(w, tCol, ce, false);
                        tb.accessTile(w, tSrc, ge, false);
                    }
                    // acc = src[col[v*deg + deg-1]] after the final
                    // gather; +1 and scatter into the owned slice.
                    tb.compute(w, 2, 1);
                    tb.accessTile(w, tDst, laneElems(vrel0, lanes),
                                  true, true);
                }
            }
            kern.blocks.push_back(tb.build());
        }
        wl.phases.push_back(Phase::gpu(std::move(kern)));

        for (std::uint32_t v = 0; v < V; ++v) {
            dstV[v] =
                srcV[(*col)[std::size_t(v) * deg + deg - 1]] + 1;
        }
    }

    auto model = std::make_shared<Model>();
    addArray(*model, graphABase, va);
    addArray(*model, graphBBase, vb);
    const Addr finalArr =
        (iters % 2 == 1) ? graphBBase : graphABase;
    wl.phases.push_back(
        Phase::cpu(cpuCheckWords(*model, finalArr, V, 4, cores)));
    wl.validate = modelValidator(model);
    attachSnapshotHooks(
        wl, eng,
        specHash({2, cfg.seed, V, deg, iters, B, W, cores}));
    return wl;
}

// ---------------------------------------------------------------------
// AttnScatter — chunked gather/scatter with mid-kernel re-staging
// ---------------------------------------------------------------------

Workload
makeAttnScatter(const SynthConfig &cfg)
{
    const std::uint32_t Q = cfg.attnQueries;
    const std::uint32_t K = cfg.attnKeyWords;
    const std::uint32_t C = cfg.attnChunkWords;
    const unsigned B = cfg.attnBlocks;
    const unsigned cores = std::max(1u, cfg.cpuCores);
    sim_assert(Q % B == 0 && K % C == 0);
    sim_assert(cfg.attnChunks >= 1 && cfg.attnGathers >= 1);
    const std::uint32_t perB = Q / B;
    const std::uint32_t numChunks = K / C;

    auto eng = std::make_shared<SynthEngine>(cfg.seed);
    std::vector<std::uint32_t> kv(K), qv(Q), out(Q, 0);
    for (std::uint32_t i = 0; i < K; ++i)
        kv[i] = initVal(wordVa(attnKBase, i));
    for (std::uint32_t i = 0; i < Q; ++i)
        qv[i] = initVal(wordVa(attnQBase, i));

    Workload wl;
    wl.name = "AttnScatter";
    wl.init = [K, Q](FunctionalMem &fm) {
        for (std::uint32_t i = 0; i < K; ++i)
            fm.writeWord(wordVa(attnKBase, i),
                         initVal(wordVa(attnKBase, i)));
        for (std::uint32_t i = 0; i < Q; ++i)
            fm.writeWord(wordVa(attnQBase, i),
                         initVal(wordVa(attnQBase, i)));
    };

    {
        auto work = cpuWriteWords(attnQBase, Q, 1, cores);
        auto keys = cpuWriteWords(attnKBase, K, 4, cores);
        for (std::size_t c = 0; c < work.size(); ++c) {
            work[c].insert(work[c].end(), keys[c].begin(),
                           keys[c].end());
        }
        wl.phases.push_back(Phase::cpu(std::move(work)));
        wl.warmupPhases = 1;
    }

    Kernel kern;
    kern.name = "attn_gather";
    for (unsigned b = 0; b < B; ++b) {
        // One warp per block keeps the re-staging barrier trivial;
        // the parallelism axis is the 15 blocks across the CUs.
        TbBuilder tb(cfg.org, 1);

        TileUse qu;
        qu.tile = wordTile(attnQBase, b * perB, perB);
        qu.localOffset = 0;
        qu.readIn = true;
        qu.writeOut = false;
        const unsigned tQ = tb.addTile(qu);

        // The stash requires chunk-aligned (64 B) local bases, and
        // small smoke sizings make perB*wordBytes fall short of that.
        const auto alignUp = [](std::uint32_t bytes) {
            return (bytes + 63u) & ~63u;
        };

        const std::uint32_t chunk0 = eng->range(numChunks);
        TileUse ku;
        ku.tile = wordTile(attnKBase, chunk0 * C, C);
        ku.localOffset = alignUp(perB * wordBytes);
        ku.readIn = true;
        ku.writeOut = false; // read-only: legal to re-stage
        const unsigned tK = tb.addTile(ku);

        TileUse ou;
        ou.tile = wordTile(attnOutBase, b * perB, perB);
        ou.localOffset = alignUp(ku.localOffset + C * wordBytes);
        ou.readIn = false; // every owned query is overwritten
        ou.writeOut = true;
        const unsigned tO = tb.addTile(ou);

        for (unsigned c = 0; c < cfg.attnChunks; ++c) {
            const std::uint32_t chunk =
                c == 0 ? chunk0 : eng->range(numChunks);
            if (c > 0)
                tb.restage(tK, wordTile(attnKBase, chunk * C, C));
            for (std::uint32_t g = 0; g < perB; g += 32) {
                const std::uint32_t lanes =
                    std::min<std::uint32_t>(32, perB - g);
                tb.accessTile(0, tQ, laneElems(g, lanes), false);
                std::vector<std::uint32_t> last;
                for (unsigned t = 0; t < cfg.attnGathers; ++t) {
                    std::vector<std::uint32_t> ge;
                    for (std::uint32_t l = 0; l < lanes; ++l)
                        ge.push_back(eng->range(C));
                    tb.accessTile(0, tK, ge, false);
                    last = std::move(ge);
                }
                tb.compute(0, 2, 1);
                tb.accessTile(0, tO, laneElems(g, lanes), true, true);
                for (std::uint32_t l = 0; l < lanes; ++l)
                    out[b * perB + g + l] = kv[chunk * C + last[l]] + 1;
            }
        }
        kern.blocks.push_back(tb.build());
    }
    wl.phases.push_back(Phase::gpu(std::move(kern)));

    auto model = std::make_shared<Model>();
    addArray(*model, attnKBase, kv);
    addArray(*model, attnQBase, qv);
    addArray(*model, attnOutBase, out);
    wl.phases.push_back(
        Phase::cpu(cpuCheckWords(*model, attnOutBase, Q, 1, cores)));
    wl.validate = modelValidator(model);
    attachSnapshotHooks(
        wl, eng,
        specHash({3, cfg.seed, Q, K, C, cfg.attnChunks,
                  cfg.attnGathers, B, cores}));
    return wl;
}

// ---------------------------------------------------------------------
// Stencil2D — 5-point stencil over row bands
// ---------------------------------------------------------------------

Workload
makeStencil2D(const SynthConfig &cfg)
{
    const std::uint32_t X = cfg.stencilX;
    const std::uint32_t Y = cfg.stencilY;
    const unsigned B = cfg.stencilBlocks;
    const unsigned W = cfg.stencilWarps;
    const unsigned iters = cfg.stencilIters;
    const unsigned cores = std::max(1u, cfg.cpuCores);
    sim_assert(Y % B == 0 && iters >= 1 && X >= 2);
    const std::uint32_t rows = Y / B;

    auto eng = std::make_shared<SynthEngine>(cfg.seed);
    std::vector<std::uint32_t> ga(std::size_t(X) * Y),
        gb(std::size_t(X) * Y, 0);
    for (std::uint32_t i = 0; i < X * Y; ++i)
        ga[i] = initVal(wordVa(stencilABase, i));

    Workload wl;
    wl.name = "Stencil2D";
    wl.init = [X, Y](FunctionalMem &fm) {
        for (std::uint32_t i = 0; i < X * Y; ++i)
            fm.writeWord(wordVa(stencilABase, i),
                         initVal(wordVa(stencilABase, i)));
    };

    wl.phases.push_back(
        Phase::cpu(cpuWriteWords(stencilABase, X * Y, 1, cores)));
    wl.warmupPhases = 1;

    for (unsigned it = 0; it < iters; ++it) {
        const Addr src = (it % 2 == 0) ? stencilABase : stencilBBase;
        const Addr dst = (it % 2 == 0) ? stencilBBase : stencilABase;
        const std::vector<std::uint32_t> &srcV =
            (it % 2 == 0) ? ga : gb;
        std::vector<std::uint32_t> &dstV = (it % 2 == 0) ? gb : ga;

        Kernel kern;
        kern.name = "stencil_step";
        for (unsigned b = 0; b < B; ++b) {
            const std::uint32_t firstRow = b * rows;
            const std::uint32_t lastRow = firstRow + rows - 1;
            const std::uint32_t tileFirst =
                firstRow > 0 ? firstRow - 1 : 0;
            const std::uint32_t tileLast =
                std::min(lastRow + 1, Y - 1);

            TbBuilder tb(cfg.org, W);
            TileUse in;
            in.tile = wordTile(src, tileFirst * X,
                               (tileLast - tileFirst + 1) * X);
            in.localOffset = 0;
            in.readIn = true;
            in.writeOut = false;
            const unsigned tIn = tb.addTile(in);

            TileUse ou;
            ou.tile = wordTile(dst, firstRow * X, rows * X);
            ou.localOffset = (tileLast - tileFirst + 1) * X *
                             wordBytes;
            ou.readIn = false; // the band is fully overwritten
            ou.writeOut = true;
            const unsigned tOut = tb.addTile(ou);

            const std::uint32_t cells = rows * X;
            unsigned g = 0;
            for (std::uint32_t c0 = 0; c0 < cells; c0 += 32, ++g) {
                const unsigned w = g % W;
                const std::uint32_t lanes =
                    std::min<std::uint32_t>(32, cells - c0);
                // Clamped-boundary 5-point star, south loaded last so
                // the accumulator dataflow is host-predictable:
                // out[r][c] = in[min(r+1, Y-1)][c] + 1.
                std::vector<std::uint32_t> eC, eN, eW, eE, eS, eO;
                for (std::uint32_t l = 0; l < lanes; ++l) {
                    const std::uint32_t cell = c0 + l;
                    const std::uint32_t r = firstRow + cell / X;
                    const std::uint32_t cc = cell % X;
                    auto rel = [&](std::uint32_t rr,
                                   std::uint32_t c2) {
                        return (rr - tileFirst) * X + c2;
                    };
                    eC.push_back(rel(r, cc));
                    eN.push_back(rel(r > 0 ? r - 1 : r, cc));
                    eW.push_back(rel(r, cc > 0 ? cc - 1 : cc));
                    eE.push_back(rel(r, cc < X - 1 ? cc + 1 : cc));
                    eS.push_back(rel(r < Y - 1 ? r + 1 : r, cc));
                    eO.push_back(cell);
                }
                tb.accessTile(w, tIn, eC, false);
                tb.accessTile(w, tIn, eN, false);
                tb.accessTile(w, tIn, eW, false);
                tb.accessTile(w, tIn, eE, false);
                tb.accessTile(w, tIn, eS, false);
                tb.compute(w, 3, 1);
                tb.accessTile(w, tOut, eO, true, true);
            }
            kern.blocks.push_back(tb.build());
        }
        wl.phases.push_back(Phase::gpu(std::move(kern)));

        for (std::uint32_t r = 0; r < Y; ++r) {
            const std::uint32_t rs = r < Y - 1 ? r + 1 : r;
            for (std::uint32_t c = 0; c < X; ++c)
                dstV[r * X + c] = srcV[rs * X + c] + 1;
        }
    }

    auto model = std::make_shared<Model>();
    addArray(*model, stencilABase, ga);
    addArray(*model, stencilBBase, gb);
    const Addr finalArr =
        (iters % 2 == 1) ? stencilBBase : stencilABase;
    wl.phases.push_back(
        Phase::cpu(cpuCheckWords(*model, finalArr, X * Y, 8, cores)));
    wl.validate = modelValidator(model);
    attachSnapshotHooks(
        wl, eng, specHash({4, cfg.seed, X, Y, iters, B, W, cores}));
    return wl;
}

// ---------------------------------------------------------------------
// Scales, names, registration
// ---------------------------------------------------------------------

SynthConfig
scaledSynthConfig(const WorkloadParams &p)
{
    SynthConfig c;
    c.org = p.org;
    if (p.cpuCores)
        c.cpuCores = p.cpuCores;
    switch (p.scale) {
      case Scale::Full:
        break;
      case Scale::Quick:
        c.mixKernels = 2;
        c.mixAccesses = 32;
        c.mixRoWords = 4096;
        c.mixSliceWords = 256;
        c.mixPrivWords = 256;
        c.graphVerts = 1920;
        c.graphDegree = 6;
        c.graphIters = 2;
        c.attnQueries = 240;
        c.attnKeyWords = 2048;
        c.attnChunkWords = 256;
        c.attnChunks = 3;
        c.attnGathers = 3;
        c.stencilX = 128;
        c.stencilY = 30;
        c.stencilIters = 2;
        break;
      case Scale::Smoke:
        c.mixKernels = 2;
        c.mixAccesses = 12;
        c.mixRoWords = 1024;
        c.mixSliceWords = 64;
        c.mixPrivWords = 64;
        c.graphVerts = 960;
        c.graphDegree = 4;
        c.graphIters = 2;
        c.attnQueries = 120;
        c.attnKeyWords = 1024;
        c.attnChunkWords = 128;
        c.attnChunks = 2;
        c.attnGathers = 2;
        c.stencilX = 64;
        c.stencilY = 15;
        c.stencilIters = 1;
        break;
    }
    return c;
}

std::vector<std::string>
syntheticNames()
{
    return {"SynthMix", "GraphGather", "AttnScatter", "Stencil2D"};
}

Workload
makeSynthetic(const std::string &name, const SynthConfig &cfg)
{
    if (name == "SynthMix")
        return makeSynthMix(cfg);
    if (name == "GraphGather")
        return makeGraphGather(cfg);
    if (name == "AttnScatter")
        return makeAttnScatter(cfg);
    if (name == "Stencil2D")
        return makeStencil2D(cfg);
    fatal("unknown synthetic workload: ", name);
}

void
registerSyntheticWorkloads(WorkloadFactory &factory)
{
    const struct
    {
        const char *name;
        const char *desc;
    } entries[] = {
        {"SynthMix", "Graphite-style synthetic memory mix "
                     "(ro-shared/rw-shared/private)"},
        {"GraphGather", "CSR graph traversal: staged indices, "
                        "irregular global gather"},
        {"AttnScatter", "attention-style gather/scatter over "
                        "re-staged key chunks"},
        {"Stencil2D", "5-point 2D stencil over staged row bands "
                      "with halos"},
    };
    for (const auto &e : entries) {
        WorkloadInfo info;
        info.name = e.name;
        info.kind = WorkloadInfo::Kind::Synthetic;
        info.description = e.desc;
        const std::string name = e.name;
        factory.registerWorkload(
            std::move(info), [name](const WorkloadParams &p) {
                return makeSynthetic(name, scaledSynthConfig(p));
            });
    }

    WorkloadInfo info;
    info.name = "TraceReplay";
    info.kind = WorkloadInfo::Kind::Replay;
    info.description = "stashtrace-v1 replay (built-in demo trace; "
                       "bring your own with --trace-replay FILE)";
    factory.registerWorkload(
        std::move(info), [](const WorkloadParams &p) {
            TraceData t;
            std::string err;
            if (!parseTrace(demoTrace(), TraceLimits(), t, err))
                fatal("built-in demo trace: ", err);
            return makeTraceReplay(t, p.org);
        });
}

} // namespace workloads
} // namespace stashsim
