/**
 * @file
 * The paper's four microbenchmarks (Section 5.4.1).
 *
 * Each emphasizes one stash benefit:
 *  - Implicit:  implicit loads + lazy writebacks remove the explicit
 *               copy instructions a scratchpad needs.
 *  - Pollution: stash transfers bypass the L1, so a second,
 *               cache-resident array keeps its locality.
 *  - On-demand: only the (data-dependent) 1-of-32 accessed elements
 *               move; scratchpad/DMA conservatively move everything.
 *  - Reuse:     the compactly-stored field survives in the stash
 *               across repeated kernel launches (it cannot fit in
 *               the cache, and a scratchpad is flushed per kernel).
 *
 * All four use an array-of-structs: the GPU kernel touches one 4-byte
 * field per 64-byte object, and a CPU phase afterwards reads what the
 * GPU produced, through coherence (15 CPU cores, 1 GPU CU; Table 2).
 *
 * Functional note (data-race freedom): our Pollution kernel treats
 * the cache-resident array B as read-only (A[i] += B[i mod |B|])
 * because concurrent read-modify-writes of shared B words from
 * different thread blocks would be a data race, which the DeNovo
 * discipline — and the paper's deterministic applications — exclude.
 * B's cache-residency behaviour, which is what the benchmark
 * measures, is unaffected.
 */

#ifndef STASHSIM_WORKLOADS_MICROBENCH_HH
#define STASHSIM_WORKLOADS_MICROBENCH_HH

#include <string>
#include <vector>

#include "config/system_config.hh"
#include "workloads/workload.hh"

namespace stashsim
{
namespace workloads
{

/** Sizing knobs; defaults are the evaluation scale. */
struct MicrobenchConfig
{
    MemOrg org = MemOrg::Scratch;
    unsigned cpuCores = 15;
    unsigned objectBytes = 64;
    unsigned threadsPerBlock = 256;
    /**
     * Compute instructions per element, per benchmark.  Implicit's
     * value pins the paper's "40% fewer instructions" ratio; the
     * others model each kernel's own compute weight.
     */
    unsigned computeOpsPerElement = 7;
    unsigned pollutionComputeOps = 12;
    unsigned onDemandComputeOps = 12;
    unsigned reuseComputeOps = 16;

    unsigned implicitElements = 8192;

    unsigned pollutionElementsA = 32768;
    unsigned pollutionWordsB = 4096; //!< 16 KB: cache-resident array

    unsigned onDemandElements = 8192;

    unsigned reuseElements = 4096; //!< 16 KB of fields: fills the stash
    unsigned reuseThreadsPerBlock = 128;
    unsigned reuseKernels = 8;
};

Workload makeImplicit(const MicrobenchConfig &cfg);
Workload makePollution(const MicrobenchConfig &cfg);
Workload makeOnDemand(const MicrobenchConfig &cfg);
Workload makeReuse(const MicrobenchConfig &cfg);

/** All four, in the paper's Figure 5 order. */
std::vector<std::string> microbenchmarkNames();

/** Factory by name (for benches and tests). */
Workload makeMicrobenchmark(const std::string &name,
                            const MicrobenchConfig &cfg);

} // namespace workloads
} // namespace stashsim

#endif // STASHSIM_WORKLOADS_MICROBENCH_HH
