#!/usr/bin/env sh
# Tier-1 CI: configure, build, and run the full test suite twice —
# once plain, once under AddressSanitizer + UndefinedBehaviorSanitizer —
# then run the quick-scale benches and archive their JSON artifacts.
#
# Usage: scripts/ci.sh [jobs]
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 4)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

run_suite() {
    build_dir="$1"
    shift
    echo "=== configure ${build_dir} ($*) ==="
    cmake -B "${build_dir}" -S "${root}" "$@"
    echo "=== build ${build_dir} ==="
    cmake --build "${build_dir}" -j "${jobs}"
    echo "=== ctest ${build_dir} ==="
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

run_suite "${root}/build"
run_suite "${root}/build-san" -DSTASHSIM_SANITIZE=address,undefined

artifacts="${root}/build/bench-artifacts"
echo "=== stashbench --quick (artifacts -> ${artifacts}) ==="
mkdir -p "${artifacts}"
"${root}/build/bench/stashbench" --quick --jobs "${jobs}" \
    --out "${artifacts}"
ls -l "${artifacts}"/BENCH_*.json

# Surface the host-throughput numbers (events/sec per bench and the
# suite aggregate) directly in the CI log, so every run leaves a
# measured perf trajectory next to the archived artifact.
echo "=== simulator throughput (BENCH_simperf.json) ==="
cat "${artifacts}/BENCH_simperf.json"

echo "=== CI passed (plain + ASan/UBSan + quick benches) ==="
