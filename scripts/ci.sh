#!/usr/bin/env sh
# Tier-1 CI: configure, build, and run the full test suite three
# times — plain, under AddressSanitizer + UndefinedBehaviorSanitizer,
# and under ThreadSanitizer (which exercises the sharded engine's
# barriers and mailboxes) — then run the quick-scale benches serial
# AND sharded, check the artifacts for byte parity, exercise the
# checkpoint/restore and multi-process farm crash-safety paths, and
# check that EXPERIMENTS.md has not drifted from the committed
# artifacts.
#
# Usage: scripts/ci.sh [jobs]
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 4)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

run_suite() {
    build_dir="$1"
    shift
    echo "=== configure ${build_dir} ($*) ==="
    cmake -B "${build_dir}" -S "${root}" "$@"
    echo "=== build ${build_dir} ==="
    cmake --build "${build_dir}" -j "${jobs}"
    echo "=== ctest ${build_dir} ==="
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

run_suite "${root}/build"
run_suite "${root}/build-san" -DSTASHSIM_SANITIZE=address,undefined
run_suite "${root}/build-tsan" -DSTASHSIM_SANITIZE=thread

artifacts="${root}/build/bench-artifacts"
echo "=== stashbench --quick, serial engine (artifacts -> ${artifacts}) ==="
mkdir -p "${artifacts}"
"${root}/build/bench/stashbench" --quick --jobs "${jobs}" \
    --out "${artifacts}"
ls -l "${artifacts}"/BENCH_*.json

# The determinism contract, enforced end to end: the sharded engine
# must reproduce every serial BENCH_<name>.json byte for byte.  The
# TSan build runs it so barrier/mailbox races surface loudly.
sharded="${root}/build/bench-artifacts-sharded"
echo "=== stashbench --quick --shards 4 under TSan (parity check) ==="
mkdir -p "${sharded}"
"${root}/build-tsan/bench/stashbench" --quick --shards 4 \
    --jobs "${jobs}" --out "${sharded}"
for f in "${artifacts}"/BENCH_*.json; do
    name="$(basename "${f}")"
    [ "${name}" = "BENCH_simperf.json" ] && continue # host wall-clock
    cmp "${f}" "${sharded}/${name}"
done
echo "serial and sharded artifacts are byte-identical"

# Checkpoint/restore parity, end to end through the CLI: run two
# quick benches dropping checkpoints at every eligible phase
# boundary, then delete the cached RESULT_* artifacts so --restore is
# forced to re-finish every run from a mid-run CKPT_* snapshot.  The
# resumed artifacts must be byte-identical — once restoring under the
# serial engine, once under --shards 4 from the same serially-taken
# checkpoints.
snapdir="${root}/build/bench-artifacts-snapshot"
echo "=== checkpoint/restore parity (fig5 serial; ablation_replication, synth --shards 4) ==="
rm -rf "${snapdir}"
mkdir -p "${snapdir}"
"${root}/build/bench/stashbench" --quick --jobs "${jobs}" \
    --checkpoint-every 1 --out "${snapdir}" \
    fig5 ablation_replication synth
for name in fig5 ablation_replication synth; do
    mv "${snapdir}/BENCH_${name}.json" \
       "${snapdir}/BENCH_${name}.ref.json"
    rm "${snapdir}/checkpoints/${name}"/RESULT_*.snap
done
"${root}/build/bench/stashbench" --quick --jobs "${jobs}" \
    --restore "${snapdir}/checkpoints" --out "${snapdir}" fig5
"${root}/build/bench/stashbench" --quick --jobs "${jobs}" \
    --shards 4 --restore "${snapdir}/checkpoints" \
    --out "${snapdir}" ablation_replication synth
for name in fig5 ablation_replication synth; do
    cmp "${snapdir}/BENCH_${name}.ref.json" \
        "${snapdir}/BENCH_${name}.json"
done
echo "checkpoint-restored artifacts are byte-identical"

# Farm crash-safety, end to end: two --farm workers drain one fig5
# sweep over a shared state dir; one is SIGKILLed mid-run (the
# dead-worker path: its lease goes stale and is reclaimed) and one is
# SIGTERMed (graceful: final checkpoint, lease released, exit 75
# "interrupted, resumable").  A fresh worker with a short lease TTL
# then finishes the campaign, and its artifact must be byte-identical
# to an uninterrupted single-process run, with no orphaned leases.
farmref="${root}/build/bench-artifacts-farm-ref"
farmstate="${root}/build/bench-farm-state"
echo "=== farm crash-safety (fig5: SIGKILL one worker, SIGTERM one, survivor finishes) ==="
rm -rf "${farmref}" "${farmstate}" \
    "${root}/build/bench-artifacts-farm-w1" \
    "${root}/build/bench-artifacts-farm-w2" \
    "${root}/build/bench-artifacts-farm-w3"
mkdir -p "${farmref}" "${farmstate}" \
    "${root}/build/bench-artifacts-farm-w1" \
    "${root}/build/bench-artifacts-farm-w2" \
    "${root}/build/bench-artifacts-farm-w3"
"${root}/build/bench/stashbench" --quick --jobs "${jobs}" \
    --out "${farmref}" fig5
"${root}/build/bench/stashbench" --quick --jobs 1 \
    --checkpoint-every 1 --farm "${farmstate}" --worker-id w1 \
    --out "${root}/build/bench-artifacts-farm-w1" fig5 \
    >/dev/null 2>&1 &
w1_pid=$!
"${root}/build/bench/stashbench" --quick --jobs 1 \
    --checkpoint-every 1 --farm "${farmstate}" --worker-id w2 \
    --out "${root}/build/bench-artifacts-farm-w2" fig5 \
    >/dev/null 2>&1 &
w2_pid=$!
sleep 2
kill -KILL "${w1_pid}" 2>/dev/null || true
kill -TERM "${w2_pid}" 2>/dev/null || true
w1_rc=0; wait "${w1_pid}" || w1_rc=$?
w2_rc=0; wait "${w2_pid}" || w2_rc=$?
# The graceful worker either finished before the signal (0) or exited
# with the distinct "interrupted, resumable" code (75).
case "${w2_rc}" in
    0|75) ;;
    *) echo "SIGTERMed farm worker exited ${w2_rc}, want 0 or 75" >&2
       exit 1 ;;
esac
sleep 2 # let the SIGKILLed worker's last heartbeat go stale
"${root}/build/bench/stashbench" --quick --jobs "${jobs}" \
    --farm "${farmstate}" --worker-id w3 --lease-ttl 1 \
    --out "${root}/build/bench-artifacts-farm-w3" fig5
cmp "${farmref}/BENCH_fig5.json" \
    "${root}/build/bench-artifacts-farm-w3/BENCH_fig5.json"
if ls "${farmstate}"/fig5/LEASE_*.json >/dev/null 2>&1; then
    echo "orphaned leases left in the farm state dir:" >&2
    ls "${farmstate}"/fig5/LEASE_*.json >&2
    exit 1
fi
echo "farmed artifact is byte-identical to the single-process sweep"

# Memory-backend leg: one quick bench per backend.  --backend fixed
# is the default model spelled explicitly, so its artifact must be
# byte-identical to the plain quick run's; sttmram and scmcache just
# have to run to completion with validated runs (their artifacts are
# model-dependent by design).  BENCH_memback.json — the three-backend
# ablation — is archived by the all-bench quick leg above.
backends_dir="${root}/build/bench-artifacts-backends"
echo "=== stashbench --backend legs (fixed parity + sttmram/scmcache) ==="
for backend in fixed sttmram scmcache; do
    rm -rf "${backends_dir}/${backend}"
    mkdir -p "${backends_dir}/${backend}"
    "${root}/build/bench/stashbench" --quick --jobs "${jobs}" \
        --backend "${backend}" --out "${backends_dir}/${backend}" fig5
done
cmp "${artifacts}/BENCH_fig5.json" \
    "${backends_dir}/fixed/BENCH_fig5.json"
echo "--backend fixed artifact is byte-identical to the default"
if "${root}/build/bench/stashbench" --backend bogus fig5 \
    >/dev/null 2>&1; then
    echo "--backend bogus should have been rejected" >&2
    exit 1
fi
echo "--backend bogus rejected with a diagnostic"

# Trace frontend leg: record a synthetic workload as a stashtrace-v1
# file, re-emit it through the parser (the canonical rendering is a
# parse/write fixed point, so the two files must be byte-identical),
# then replay it as a bench.  Malformed traces and bad flag
# combinations must be rejected with exit 2.
tracedir="${root}/build/bench-artifacts-trace"
echo "=== stashtrace record -> normalize -> replay round trip ==="
rm -rf "${tracedir}"
mkdir -p "${tracedir}"
"${root}/build/bench/stashbench" --quick \
    --trace-from SynthMix --trace-record "${tracedir}/synthmix.trace"
"${root}/build/bench/stashbench" \
    --trace-replay "${tracedir}/synthmix.trace" \
    --trace-record "${tracedir}/synthmix.norm.trace"
cmp "${tracedir}/synthmix.trace" "${tracedir}/synthmix.norm.trace"
echo "recorded and normalized traces are byte-identical"
"${root}/build/bench/stashbench" --quick --jobs "${jobs}" \
    --trace-replay "${tracedir}/synthmix.trace" --out "${tracedir}"
ls -l "${tracedir}/BENCH_replay.json"
printf 'not a trace\n' > "${tracedir}/bogus.trace"
if "${root}/build/bench/stashbench" \
    --trace-replay "${tracedir}/bogus.trace" >/dev/null 2>&1; then
    echo "malformed trace should have been rejected" >&2
    exit 1
fi
if "${root}/build/bench/stashbench" --trace-from SynthMix \
    >/dev/null 2>&1; then
    echo "--trace-from without --trace-record should be rejected" >&2
    exit 1
fi
echo "malformed trace and bad flag combinations rejected"

# Scaling leg: measure the sharded engine's real speedup.  The
# scaling bench is explicit-only (host wall-clock artifact), runs the
# shard-count ladder sequentially, and self-checks that every sharded
# point reproduces the serial point's deterministic counters — a
# non-validated run fails the CLI.  A 1-core host has no ladder to
# climb (and the quantum overheads would only add noise), so the leg
# is skipped there with a notice.
cores="$(nproc 2>/dev/null || echo 1)"
if [ "${cores}" -le 1 ]; then
    echo "=== scaling bench: SKIPPED (${cores} hardware thread(s);" \
         "needs >1 to measure speedup) ==="
else
    scaling="${root}/build/bench-artifacts-scaling"
    echo "=== stashbench --quick scaling (artifacts -> ${scaling}) ==="
    rm -rf "${scaling}"
    mkdir -p "${scaling}"
    "${root}/build/bench/stashbench" --quick --out "${scaling}" \
        scaling
    ls -l "${scaling}/BENCH_scaling.json"
    # And the auto-tune path end to end: --shards 0 picks a count via
    # the cost model; every run must still validate (the artifact
    # additionally records each run's autoShards decision).
    "${root}/build/bench/stashbench" --quick --jobs "${jobs}" \
        --shards 0 --out "${scaling}" fig5
    ls -l "${scaling}/BENCH_fig5.json"
    echo "scaling bench artifact archived"
fi

# Sampling leg: warm once, fan measured intervals out from the one
# checkpoint (DESIGN.md §17).  Three checks: the sampled quick-scale
# sweep completes validated over gpu-group deltas; its artifact is
# byte-identical to the uninterrupted --sample-unsampled twin; and an
# undeclared delta is rejected with the structured config-hash
# diagnostic and a failing exit code.
sampledir="${root}/build/bench-artifacts-sample"
twindir="${root}/build/bench-artifacts-sample-twin"
echo "=== stashbench --sample (warm-once fan-out + unsampled twin parity) ==="
rm -rf "${sampledir}" "${twindir}"
mkdir -p "${sampledir}" "${twindir}"
sample_deltas="identity,local:32,org:Cache,org:ScratchGD"
"${root}/build/bench/stashbench" --quick --jobs "${jobs}" \
    --sample --sample-deltas "${sample_deltas}" --out "${sampledir}"
"${root}/build/bench/stashbench" --quick --jobs "${jobs}" \
    --sample-unsampled --sample-deltas "${sample_deltas}" \
    --out "${twindir}"
cmp "${sampledir}/BENCH_sample.json" "${twindir}/BENCH_sample.json"
echo "sampled artifact is byte-identical to the unsampled twin"
rejectdir="${root}/build/bench-artifacts-sample-reject"
rm -rf "${rejectdir}"
mkdir -p "${rejectdir}"
reject_rc=0
"${root}/build/bench/stashbench" --quick --jobs "${jobs}" \
    --sample --sample-deltas "identity,undeclared:org:Cache" \
    --max-attempts 1 --out "${rejectdir}" \
    > "${rejectdir}/reject.log" 2>&1 || reject_rc=$?
if [ "${reject_rc}" -eq 0 ]; then
    echo "undeclared sample delta should have failed the run" >&2
    exit 1
fi
grep -q "snapshot configuration hash mismatch" \
    "${rejectdir}/reject.log"
grep -q "undeclared config delta in group(s) 'gpu'" \
    "${rejectdir}/reject.log"
echo "undeclared delta rejected with the structured diagnostic"
ls -l "${sampledir}/BENCH_sample.json"

# Surface the host-throughput numbers (events/sec per bench and the
# suite aggregate) directly in the CI log, so every run leaves a
# measured perf trajectory next to the archived artifact.
echo "=== simulator throughput (BENCH_simperf.json) ==="
cat "${artifacts}/BENCH_simperf.json"

# EXPERIMENTS.md drift check: the committed report must match what
# --render-md produces from a fresh full-scale run.  The benches are
# deterministic, so regenerating the artifacts here is exact — no
# committed JSON needed.
full="${root}/build/bench-artifacts-full"
echo "=== stashbench full scale + EXPERIMENTS.md drift check ==="
mkdir -p "${full}"
"${root}/build/bench/stashbench" --jobs "${jobs}" --out "${full}"
"${root}/build/bench/stashbench" --out "${full}" \
    --render-md "${root}/EXPERIMENTS.md"
git -C "${root}" diff --exit-code -- EXPERIMENTS.md || {
    echo "EXPERIMENTS.md is stale: regenerate it with" \
         "'stashbench --out <dir> --render-md EXPERIMENTS.md'" \
         "and commit" >&2
    exit 1
}

echo "=== CI passed (plain + ASan/UBSan + TSan + quick benches + parity + checkpoint/restore + farm + backends + trace + scaling + sampling) ==="
