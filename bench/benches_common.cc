/**
 * @file
 * Shared bench plumbing: the registry, the document/run JSON
 * builders, and the traced sweep wrapper.
 */

#include "benches.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>

#include "mem/backend/mem_backend.hh"
#include "report/trace.hh"

namespace stashbench
{

// Implemented in benches_figs.cc / benches_ablation.cc.
report::JsonValue runTable3(const BenchContext &ctx);
report::JsonValue runFig5(const BenchContext &ctx);
report::JsonValue runFig6(const BenchContext &ctx);
report::JsonValue runAblationReplication(const BenchContext &ctx);
report::JsonValue runAblationChunkGranularity(const BenchContext &ctx);
report::JsonValue runAblationStashMapSize(const BenchContext &ctx);
report::JsonValue runAblationTranslationLatency(const BenchContext &ctx);
report::JsonValue runAblationSparsitySweep(const BenchContext &ctx);
report::JsonValue runMemBackend(const BenchContext &ctx);
report::JsonValue runSynth(const BenchContext &ctx);
report::JsonValue runSynthspace(const BenchContext &ctx);
// Implemented in benches_scaling.cc.
report::JsonValue runScaling(const BenchContext &ctx);

const std::vector<BenchInfo> &
benchList()
{
    static const std::vector<BenchInfo> benches = {
        {"table3", "Table 3: per-access energy of the hardware units",
         "-",
         "Static per-access energy of each unit; no simulation runs",
         runTable3},
        {"fig5",
         "Figure 5: microbenchmark comparison (Implicit / Pollution "
         "/ On-demand / Reuse)",
         "smoke quick full",
         "4 microbenchmarks x 6 memory configs on the 1-CU machine",
         runFig5},
        {"fig6",
         "Figure 6: application comparison (7 GPU applications, "
         "15 CUs + 1 CPU)",
         "smoke quick full",
         "7 applications x 6 memory configs on the 15-CU machine",
         runFig6},
        {"ablation_replication",
         "Ablation: stash data-replication optimization (Section 4.5)",
         "smoke quick full",
         "Reuse microbenchmark with the reuseBit optimization on/off",
         runAblationReplication},
        {"ablation_chunk_granularity",
         "Ablation: stash writeback chunk granularity",
         "smoke quick full",
         "Sweeps the stash writeback chunk size (64..256 bytes)",
         runAblationChunkGranularity},
        {"ablation_stash_map_size", "Ablation: stash-map entries",
         "smoke quick full",
         "Sweeps the stash-map capacity against map-reuse pressure",
         runAblationStashMapSize},
        {"ablation_translation_latency",
         "Ablation: stash miss translation latency",
         "smoke quick full",
         "Sweeps the stash TLB/translation miss cost (0..40 cycles)",
         runAblationTranslationLatency},
        {"ablation_sparsity_sweep",
         "Ablation: on-demand sparsity sweep (stash/DMA crossover)",
         "smoke quick full",
         "Sweeps access sparsity to find the stash/DMA crossover",
         runAblationSparsitySweep},
        {"memback",
         "Ablation: memory backend (fixed DRAM / STT-MRAM / SCM "
         "DRAM-cache)",
         "smoke quick full",
         "Table 3 applications x 3 memory backends x "
         "stash/scratch/cache",
         runMemBackend},
        {"synth",
         "Synthetic traffic: generated mixes, graph gather, "
         "attention scatter, 2D stencil",
         "smoke quick full",
         "6 synthetic workload variants x scratchGD/cache/stash on "
         "the 15-CU machine",
         runSynth},
        {"scaling",
         "Scaling: sharded-engine events/sec vs --shards "
         "(host wall-clock; explicit-only)",
         "smoke quick full",
         "Fixed workloads x shard counts {1,2,4,..,min(tiles,hw)}; "
         "run by name only — the artifact is host-dependent",
         runScaling, /*defaultRun=*/false},
        {"synthspace",
         "Sampled SynthMix parameter space: warm once per point, "
         "fan organizations out from the checkpoint (explicit-only)",
         "smoke quick full",
         "5 ro/rw mix points x identity/scratchGD/stash deltas, "
         "each point warmed once (DESIGN.md §17); run by "
         "name only — it keeps farm state under --out",
         runSynthspace, /*defaultRun=*/false},
    };
    return benches;
}

void
SimperfCollector::add(const char *bench,
                      const std::vector<RunRecord> &records)
{
    BenchTotals *t = nullptr;
    for (BenchTotals &b : benches) {
        if (b.bench == bench) {
            t = &b;
            break;
        }
    }
    if (!t) {
        benches.emplace_back();
        benches.back().bench = bench;
        t = &benches.back();
    }
    for (const RunRecord &rec : records) {
        const SimPerfSummary &p = rec.result.perf;
        ++t->runs;
        t->events += p.events;
        t->simTicks += p.simTicks;
        t->hostSeconds += p.hostSeconds;
        t->shape.peakLiveEvents = std::max(t->shape.peakLiveEvents,
                                           p.shape.peakLiveEvents);
        t->shape.poolChunks += p.shape.poolChunks;
        t->shape.wheelInserts += p.shape.wheelInserts;
        t->shape.farInserts += p.shape.farInserts;
        t->execNs += p.engine.execNs;
        t->barrierWaitNs += p.engine.barrierWaitNs;
        t->flushNs += p.engine.flushNs;
        t->quanta += p.engine.quanta;
    }
}

namespace
{

report::JsonValue
engineTotalsJson(std::uint64_t exec_ns, std::uint64_t barrier_ns,
                 std::uint64_t flush_ns, std::uint64_t quanta)
{
    report::JsonValue e = report::JsonValue::object();
    e["execNs"] = double(exec_ns);
    e["barrierWaitNs"] = double(barrier_ns);
    e["flushNs"] = double(flush_ns);
    e["quanta"] = double(quanta);
    return e;
}

} // namespace

report::JsonValue
SimperfCollector::toJson(const char *scale, double wallSeconds) const
{
    report::JsonValue doc = report::JsonValue::object();
    doc["schema"] = "stashsim-simperf-v1";
    doc["scale"] = scale;
    // Engine mode: per-mode artifacts (serial vs --shards N) carry
    // the same deterministic event counts, so eventsPerSec compares
    // engine throughput directly.
    doc["shards"] = double(shards);
    doc["wallSeconds"] = wallSeconds;

    std::uint64_t runs = 0, events = 0, ticks = 0;
    double host = 0;
    QueueShape shape;
    std::uint64_t execNs = 0, barrierNs = 0, flushNs = 0, quanta = 0;
    report::JsonValue arr = report::JsonValue::array();
    for (const BenchTotals &b : benches) {
        report::JsonValue e = report::JsonValue::object();
        e["bench"] = b.bench;
        e["runs"] = double(b.runs);
        e["events"] = double(b.events);
        e["simTicks"] = double(b.simTicks);
        e["hostSeconds"] = b.hostSeconds;
        e["eventsPerSec"] = b.hostSeconds > 0
                                ? double(b.events) / b.hostSeconds
                                : 0.0;
        report::JsonValue q = report::JsonValue::object();
        q["peakLiveEvents"] = double(b.shape.peakLiveEvents);
        q["poolChunks"] = double(b.shape.poolChunks);
        q["wheelInserts"] = double(b.shape.wheelInserts);
        q["farInserts"] = double(b.shape.farInserts);
        e["queueShape"] = std::move(q);
        e["engine"] = engineTotalsJson(b.execNs, b.barrierWaitNs,
                                       b.flushNs, b.quanta);
        arr.push(std::move(e));
        runs += b.runs;
        events += b.events;
        ticks += b.simTicks;
        host += b.hostSeconds;
        shape.peakLiveEvents = std::max(shape.peakLiveEvents,
                                        b.shape.peakLiveEvents);
        shape.poolChunks += b.shape.poolChunks;
        shape.wheelInserts += b.shape.wheelInserts;
        shape.farInserts += b.shape.farInserts;
        execNs += b.execNs;
        barrierNs += b.barrierWaitNs;
        flushNs += b.flushNs;
        quanta += b.quanta;
    }
    doc["benches"] = std::move(arr);

    report::JsonValue tot = report::JsonValue::object();
    tot["runs"] = double(runs);
    tot["events"] = double(events);
    tot["simTicks"] = double(ticks);
    tot["hostSeconds"] = host;
    tot["eventsPerSec"] = host > 0 ? double(events) / host : 0.0;
    tot["ticksPerHostSec"] = host > 0 ? double(ticks) / host : 0.0;
    report::JsonValue q = report::JsonValue::object();
    q["peakLiveEvents"] = double(shape.peakLiveEvents);
    q["poolChunks"] = double(shape.poolChunks);
    q["wheelInserts"] = double(shape.wheelInserts);
    q["farInserts"] = double(shape.farInserts);
    tot["queueShape"] = std::move(q);
    tot["engine"] =
        engineTotalsJson(execNs, barrierNs, flushNs, quanta);
    doc["totals"] = std::move(tot);

    // Structured recovery counters (sweep.*): this document is the
    // one non-deterministic artifact, so the resume/farm bookkeeping
    // belongs here rather than in the byte-reproducible per-bench
    // documents.
    report::JsonValue rec = report::JsonValue::object();
    rec["sweep.cachedRuns"] = double(recovery.cachedRuns);
    rec["sweep.resumedRuns"] = double(recovery.resumedRuns);
    rec["sweep.corruptSnapshots"] = double(recovery.corruptSnapshots);
    rec["sweep.staleResults"] = double(recovery.staleResults);
    rec["sweep.quarantinedArtifacts"] =
        double(recovery.quarantinedArtifacts);
    rec["sweep.reclaimedLeases"] = double(recovery.reclaimedLeases);
    rec["sweep.retriedRuns"] = double(recovery.retriedRuns);
    rec["sweep.failedSpecs"] = double(recovery.failedSpecs);
    rec["sweep.interrupted"] = recovery.interrupted;
    doc["recovery"] = std::move(rec);
    return doc;
}

report::JsonValue
benchInventoryJson()
{
    report::JsonValue doc = report::JsonValue::object();
    doc["schema"] = "stashsim-benchlist-v1";
    report::JsonValue arr = report::JsonValue::array();
    for (const BenchInfo &b : benchList()) {
        report::JsonValue e = report::JsonValue::object();
        e["name"] = b.name;
        e["title"] = b.title;
        e["description"] = b.desc;
        report::JsonValue scales = report::JsonValue::array();
        // "-" marks a scale-independent bench: empty list.
        if (std::string(b.scales) != "-") {
            std::string word;
            for (const char *p = b.scales;; ++p) {
                if (*p == ' ' || *p == '\0') {
                    if (!word.empty())
                        scales.push(word);
                    word.clear();
                    if (*p == '\0')
                        break;
                } else {
                    word += *p;
                }
            }
        }
        e["scales"] = std::move(scales);
        arr.push(std::move(e));
    }
    doc["benches"] = std::move(arr);
    // The runnable workload inventory (including the synthetic
    // family and the trace-replay frontend), so wrappers can build
    // run grids without scraping --list-workloads.
    report::JsonValue wls = report::JsonValue::array();
    for (const auto &info :
         workloads::WorkloadFactory::instance().list()) {
        report::JsonValue e = report::JsonValue::object();
        e["name"] = info.name;
        e["kind"] = info.kindName();
        e["description"] = info.description;
        wls.push(std::move(e));
    }
    doc["workloads"] = std::move(wls);
    report::JsonValue backends = report::JsonValue::array();
    for (const MemBackendInfo &b : memBackendList()) {
        report::JsonValue e = report::JsonValue::object();
        e["name"] = b.name;
        e["description"] = b.desc;
        backends.push(std::move(e));
    }
    doc["backends"] = std::move(backends);
    return doc;
}

const BenchInfo *
findBench(const std::string &name)
{
    for (const BenchInfo &b : benchList()) {
        if (name == b.name)
            return &b;
    }
    return nullptr;
}

bool
allRunsValidated(const report::JsonValue &doc)
{
    const report::JsonValue *runs = doc.find("runs");
    if (!runs || runs->kind() != report::JsonValue::Kind::Array)
        return true;
    for (std::size_t i = 0; i < runs->size(); ++i) {
        const report::JsonValue *v = runs->at(i).find("validated");
        if (v && !v->asBool())
            return false;
    }
    return true;
}

report::JsonValue
benchDoc(const BenchContext &ctx, const char *name, const char *title)
{
    report::JsonValue doc = report::JsonValue::object();
    doc["schema"] = "stashsim-bench-v1";
    doc["bench"] = name;
    doc["title"] = title;
    doc["scale"] = workloads::scaleName(ctx.scale);
    return doc;
}

report::JsonValue
runToJson(const RunRecord &rec, bool components)
{
    const RunResult &r = rec.result;
    report::JsonValue run = report::JsonValue::object();
    run["workload"] = rec.spec.workload;
    run["config"] = memOrgName(rec.spec.org);
    run["label"] = rec.spec.label();
    run["validated"] = r.validated;
    report::JsonValue errors = report::JsonValue::array();
    for (const std::string &e : r.errors)
        errors.push(e);
    run["errors"] = std::move(errors);
    run["gpuCycles"] = double(r.gpuCycles);
    run["instructions"] = double(r.stats.gpu.instructions);

    report::JsonValue energy = report::JsonValue::object();
    energy["gpuCore"] = r.energy.gpuCore;
    energy["l1"] = r.energy.l1;
    energy["local"] = r.energy.local;
    energy["l2"] = r.energy.l2;
    energy["noc"] = r.energy.noc;
    energy["total"] = r.energy.total();
    run["energy"] = std::move(energy);

    report::JsonValue flits = report::JsonValue::object();
    flits["read"] = double(r.stats.noc.flitHops[0]);
    flits["write"] = double(r.stats.noc.flitHops[1]);
    flits["writeback"] = double(r.stats.noc.flitHops[2]);
    flits["total"] = double(r.stats.noc.totalFlitHops());
    run["flitHops"] = std::move(flits);

    // Deterministic SimPerf counters only — host timings would break
    // the artifact's byte-reproducibility (they live in
    // BENCH_simperf.json instead).
    report::JsonValue perf = report::JsonValue::object();
    perf["events"] = double(r.perf.events);
    perf["simTicks"] = double(r.perf.simTicks);
    run["perf"] = std::move(perf);

    // --shards 0 runs record the model's decision and its
    // host-independent input, so the artifact says how it was made.
    // Fixed --shards N runs emit nothing here — their artifacts stay
    // byte-identical to serial.
    if (r.shardsAutoTuned) {
        report::JsonValue a = report::JsonValue::object();
        a["shards"] = double(r.shardsUsed);
        a["eventsPerQuantum"] = r.autoEventsPerQuantum;
        run["autoShards"] = std::move(a);
    }

    if (components) {
        report::JsonValue stats = report::JsonValue::object();
        for (const auto &[key, value] : r.stats.flatten())
            stats[key] = value;
        run["stats"] = std::move(stats);
    }
    return run;
}

namespace
{

std::string
traceFileLabel(const std::string &label)
{
    std::string out = label;
    for (char &c : out) {
        if (c == '/' || c == ' ')
            c = '_';
    }
    return out;
}

} // namespace

std::vector<RunRecord>
sweepSpecs(const BenchContext &ctx, const char *bench,
           std::vector<RunSpec> specs)
{
    if (!ctx.traceDir.empty()) {
        for (RunSpec &spec : specs) {
            const std::string path = ctx.traceDir + "/TRACE_" +
                                     bench + "_" +
                                     traceFileLabel(spec.label()) +
                                     ".json";
            auto sink =
                std::make_shared<report::ChromeTraceSink>(spec.label());
            spec.instrument = [sink](System &sys) {
                sink->trackCounter("gpu.instructions", [&sys]() {
                    return double(
                        sys.statsSnapshot().gpu.instructions);
                });
                sink->trackCounter("noc.flitHops.total", [&sys]() {
                    return double(
                        sys.statsSnapshot().noc.totalFlitHops());
                });
                sys.eventQueue().addPhaseListener(sink.get());
            };
            spec.finish = [sink, path](System &,
                                       const RunResult &) {
                std::ofstream os(path);
                if (os)
                    sink->writeTo(os);
            };
        }
    }
    for (RunSpec &spec : specs) {
        if (!spec.shards)
            spec.shards = ctx.shards;
        if (!spec.backend)
            spec.backend = ctx.backend;
    }
    SweepOptions opts;
    opts.threads = ctx.jobs;
    opts.shardsPerRun = ctx.shards;
    opts.progress = ctx.progress;
    opts.stop = ctx.stop;
    if (!ctx.stateDir.empty()) {
        // Per-bench state subdirectory: different benches run
        // same-labelled specs under different configurations, and the
        // RESULT_/CKPT_ namespaces must not collide across them.
        opts.stateDir = ctx.stateDir + "/" + bench;
        std::filesystem::create_directories(opts.stateDir);
        opts.checkpointEveryTicks = Tick(ctx.checkpointEvery);
        opts.resume = ctx.resume;
        opts.workerId = ctx.workerId;
        opts.leaseTtlMs = ctx.leaseTtlMs;
        opts.maxAttempts = ctx.maxAttempts;
    }
    SweepCounters counters;
    std::vector<RunRecord> records =
        SweepDriver(opts).run(std::move(specs), &counters);
    if (ctx.simperf) {
        ctx.simperf->add(bench, records);
        ctx.simperf->recovery.add(counters);
    }
    return records;
}

} // namespace stashbench
