/**
 * @file
 * Reproduces Figure 6: the seven applications (LUD, SURF, BP, NW,
 * PF, SGEMM, STENCIL) under Scratch, ScratchG, Cache, Stash, and
 * StashG.
 *
 * Two panels, normalized to Scratch per application:
 *   (a) execution time
 *   (b) dynamic energy with the five-way breakdown
 *
 * The paper's reference results (Section 6.3): StashG reduces
 * execution time by 10% on average (max 22%) and energy by 16%
 * (max 30%) versus Scratch; versus Cache, 12% time (max 31%) and
 * 32% energy (max 51%).  ScratchG is ~7%/12% *worse* than Scratch.
 * The paper's per-app normalized values, read off Figure 6:
 *   time:   LUD 121/103/100 (ScratchG/Cache over 100=Scratch);
 *   energy: values above the clipped bars are printed by this bench
 *           for side-by-side comparison.
 */

#include "bench_util.hh"

using namespace benchutil;

namespace
{

const std::vector<MemOrg> configs = {MemOrg::Scratch, MemOrg::ScratchG,
                                     MemOrg::Cache, MemOrg::Stash,
                                     MemOrg::StashG};

void
printHeader(const char *title)
{
    std::printf("--- %s (normalized to Scratch) ---\n", title);
    std::printf("%-9s", "");
    for (MemOrg org : configs)
        std::printf(" %9s", memOrgName(org));
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = quickMode(argc, argv);
    const SystemConfig cfg = SystemConfig::applicationDefault();
    printSystemBanner("Figure 6: application comparison (7 GPU "
                      "applications, 15 CUs + 1 CPU)",
                      cfg, quick);

    std::map<std::string, std::map<MemOrg, RunResult>> results;
    for (const auto &name : workloads::applicationNames()) {
        for (MemOrg org : configs) {
            std::fprintf(stderr, "running %s/%s...\n", name.c_str(),
                         memOrgName(org));
            results[name][org] = runApplication(name, org, quick);
        }
    }

    // ---- (a) execution time ------------------------------------
    printHeader("(a) Execution time");
    std::map<MemOrg, double> avg_time;
    for (const auto &name : workloads::applicationNames()) {
        auto &per = results[name];
        const double base = double(per[MemOrg::Scratch].gpuCycles);
        std::printf("%-9s", name.c_str());
        for (MemOrg org : configs) {
            const double v = double(per[org].gpuCycles) / base;
            avg_time[org] += v;
            std::printf(" %9.2f", v);
        }
        std::printf("\n");
    }
    std::printf("%-9s", "AVERAGE");
    for (MemOrg org : configs)
        std::printf(" %9.2f", avg_time[org] / 7.0);
    std::printf("\n  paper avg: ScratchG 1.07, Cache 1.02, StashG "
                "0.90 (vs Scratch 1.00)\n\n");

    // ---- (b) dynamic energy ------------------------------------
    printHeader("(b) Dynamic energy");
    std::map<MemOrg, double> avg_energy;
    for (const auto &name : workloads::applicationNames()) {
        auto &per = results[name];
        const double base = per[MemOrg::Scratch].energy.total();
        std::printf("%-9s", name.c_str());
        for (MemOrg org : configs) {
            const double v = per[org].energy.total() / base;
            avg_energy[org] += v;
            std::printf(" %9.2f", v);
        }
        std::printf("\n");
        for (MemOrg org : configs) {
            const EnergyBreakdown &e = per[org].energy;
            std::printf("  %-9s core+ %4.1f%%  L1 %4.1f%%  "
                        "scr/stash %4.1f%%  L2 %4.1f%%  N/W %4.1f%%\n",
                        memOrgName(org), 100 * e.gpuCore / e.total(),
                        100 * e.l1 / e.total(),
                        100 * e.local / e.total(),
                        100 * e.l2 / e.total(),
                        100 * e.noc / e.total());
        }
    }
    std::printf("%-9s", "AVERAGE");
    for (MemOrg org : configs)
        std::printf(" %9.2f", avg_energy[org] / 7.0);
    std::printf("\n  paper avg: ScratchG 1.12, Cache 1.18, StashG "
                "0.84 (vs Scratch 1.00)\n");
    return 0;
}
