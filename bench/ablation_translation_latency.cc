/**
 * @file
 * Ablation: the stash's miss translation latency (Table 2 charges
 * 10 cycles for the stash-map arithmetic plus VP-map lookup).
 *
 * Translation is only on the miss path — hits are direct — so the
 * sensitivity depends on the miss rate: On-demand (every access a
 * compulsory miss) is the worst case, Reuse (hits after the first
 * kernel) barely notices.
 */

#include "bench_util.hh"

using namespace benchutil;

int
main(int argc, char **argv)
{
    const bool quick = quickMode(argc, argv);
    std::printf("Ablation: stash miss translation latency\n\n");
    std::printf("%-10s %8s %12s %12s\n", "workload", "cycles/xl",
                "run cycles", "vs 10cy");

    for (const char *name : {"Implicit", "On-demand", "Reuse"}) {
        Cycles base_cycles = 0;
        for (Cycles xl : {0u, 5u, 10u, 20u, 40u}) {
            SystemConfig cfg = SystemConfig::microbenchmarkDefault();
            cfg.stashTranslationCycles = xl;
            RunResult r =
                runMicrobenchmark(name, MemOrg::Stash, quick, &cfg);
            if (xl == 10)
                base_cycles = r.gpuCycles;
            std::printf("%-10s %8llu %12llu", name,
                        (unsigned long long)xl,
                        (unsigned long long)r.gpuCycles);
            if (base_cycles)
                std::printf(" %11.2fx",
                            double(r.gpuCycles) /
                                double(base_cycles));
            std::printf("\n");
        }
        std::printf("\n");
    }
    return 0;
}
