/**
 * @file
 * The `scaling` bench: the sharded engine's measured speedup.
 *
 * Runs a fixed workload pair (SynthMix and Stencil2D under Stash on
 * the 15-CU application machine — one regular and one irregular
 * traffic shape) once per shard count in {1, 2, 4, ..., min(tiles,
 * hardware threads)}, sequentially so each point owns the host, and
 * records wall-clock events/sec, quanta/sec, and the per-shard
 * barrier-wait vs execute split into the stashsim-scaling-v1
 * document (BENCH_scaling.json).
 *
 * This artifact is intentionally host-dependent — wall-clock is the
 * quantity under test — so the bench is explicit-only
 * (BenchInfo::defaultRun = false): it never feeds the deterministic
 * default artifact set or the EXPERIMENTS.md drift check.  The
 * deterministic counters (events, simTicks, gpuCycles) of every
 * sharded point must still match the serial point exactly; each
 * point's "validated" asserts that, so the CLI exit code enforces
 * the parity contract here too.
 *
 * Document schema (stashsim-scaling-v1):
 *   schema      "stashsim-scaling-v1"
 *   bench       "scaling"
 *   scale       "full" | "quick" | "smoke"
 *   workloads   [names]
 *   config      MemOrg name
 *   tiles       mesh nodes (queue shards available)
 *   hwThreads   host hardware concurrency (host-dependent)
 *   runs        one per shard count:
 *                 shards, validated, events, simTicks, hostSeconds,
 *                 eventsPerSec, quanta, quantaPerSec, speedup
 *                 (vs shards=1), engine{execNs,barrierWaitNs,
 *                 flushNs,quanta}, lanes[{shard,execNs,
 *                 barrierWaitNs}], perWorkload[{workload,events,
 *                 simTicks,hostSeconds,validated}]
 */

#include "benches.hh"

#include <algorithm>
#include <thread>

namespace stashbench
{

namespace
{

const char *const kWorkloads[] = {"SynthMix", "Stencil2D"};
constexpr MemOrg kOrg = MemOrg::Stash;

/** {1, 2, 4, ...} up to and including min(tiles, hw threads). */
std::vector<unsigned>
shardCandidates(unsigned tiles)
{
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned maxK = std::max(1u, std::min(tiles, hw));
    std::vector<unsigned> ks{1};
    for (unsigned k = 2; k < maxK; k *= 2)
        ks.push_back(k);
    if (maxK > 1)
        ks.push_back(maxK);
    return ks;
}

/** The deterministic fingerprint a sharded point must reproduce. */
struct Reference
{
    std::uint64_t events = 0;
    std::uint64_t simTicks = 0;
    std::uint64_t gpuCycles = 0;
};

} // namespace

report::JsonValue
runScaling(const BenchContext &ctx)
{
    RunSpec probe;
    probe.workload = kWorkloads[0];
    probe.org = kOrg;
    const unsigned tiles = resolveRunConfig(probe).numNodes();
    const std::vector<unsigned> ks = shardCandidates(tiles);

    report::JsonValue doc = report::JsonValue::object();
    doc["schema"] = "stashsim-scaling-v1";
    doc["bench"] = "scaling";
    doc["title"] = findBench("scaling")->title;
    doc["scale"] = workloads::scaleName(ctx.scale);
    report::JsonValue names = report::JsonValue::array();
    for (const char *w : kWorkloads)
        names.push(w);
    doc["workloads"] = std::move(names);
    doc["config"] = memOrgName(kOrg);
    doc["tiles"] = double(tiles);
    doc["hwThreads"] =
        double(std::max(1u, std::thread::hardware_concurrency()));

    std::vector<Reference> refs(std::size(kWorkloads));
    double serialHostSeconds = 0;
    std::vector<RunRecord> allRecords;

    report::JsonValue runs = report::JsonValue::array();
    for (const unsigned k : ks) {
        report::JsonValue point = report::JsonValue::object();
        point["shards"] = double(k);
        bool validated = true;
        std::uint64_t events = 0, simTicks = 0, quanta = 0;
        std::uint64_t execNs = 0, barrierNs = 0, flushNs = 0;
        double hostSeconds = 0;
        std::vector<ShardLane> lanes;
        report::JsonValue perWl = report::JsonValue::array();

        for (std::size_t w = 0; w < std::size(kWorkloads); ++w) {
            if (ctx.stop &&
                ctx.stop->load(std::memory_order_relaxed))
                break;
            RunSpec spec;
            spec.workload = kWorkloads[w];
            spec.org = kOrg;
            spec.scale = ctx.scale;
            spec.shards = k;
            spec.backend = ctx.backend;
            if (ctx.progress) {
                *ctx.progress << "  scaling: shards=" << k << " "
                              << spec.label() << "\n";
            }
            RunRecord rec{spec, runSpec(spec)};
            const RunResult &r = rec.result;

            bool ok = r.validated;
            if (k == 1) {
                refs[w] = {r.perf.events, r.perf.simTicks,
                           std::uint64_t(r.gpuCycles)};
            } else {
                // The parity contract, re-checked per point: a
                // sharded run must reproduce the serial run's
                // deterministic counters exactly.
                ok = ok && r.perf.events == refs[w].events &&
                     r.perf.simTicks == refs[w].simTicks &&
                     std::uint64_t(r.gpuCycles) == refs[w].gpuCycles;
            }
            validated = validated && ok;

            events += r.perf.events;
            simTicks += r.perf.simTicks;
            hostSeconds += r.perf.hostSeconds;
            quanta += r.perf.engine.quanta;
            execNs += r.perf.engine.execNs;
            barrierNs += r.perf.engine.barrierWaitNs;
            flushNs += r.perf.engine.flushNs;
            if (lanes.size() < r.perf.engine.lanes.size())
                lanes.resize(r.perf.engine.lanes.size());
            for (std::size_t i = 0;
                 i < r.perf.engine.lanes.size(); ++i) {
                lanes[i].execNs += r.perf.engine.lanes[i].execNs;
                lanes[i].barrierWaitNs +=
                    r.perf.engine.lanes[i].barrierWaitNs;
            }

            report::JsonValue e = report::JsonValue::object();
            e["workload"] = spec.workload;
            e["events"] = double(r.perf.events);
            e["simTicks"] = double(r.perf.simTicks);
            e["hostSeconds"] = r.perf.hostSeconds;
            e["validated"] = ok;
            perWl.push(std::move(e));
            allRecords.push_back(std::move(rec));
        }

        if (k == 1)
            serialHostSeconds = hostSeconds;
        point["validated"] = validated;
        point["events"] = double(events);
        point["simTicks"] = double(simTicks);
        point["hostSeconds"] = hostSeconds;
        point["eventsPerSec"] =
            hostSeconds > 0 ? double(events) / hostSeconds : 0.0;
        point["quanta"] = double(quanta);
        point["quantaPerSec"] =
            hostSeconds > 0 ? double(quanta) / hostSeconds : 0.0;
        point["speedup"] = hostSeconds > 0
                               ? serialHostSeconds / hostSeconds
                               : 0.0;
        report::JsonValue eng = report::JsonValue::object();
        eng["execNs"] = double(execNs);
        eng["barrierWaitNs"] = double(barrierNs);
        eng["flushNs"] = double(flushNs);
        eng["quanta"] = double(quanta);
        point["engine"] = std::move(eng);
        report::JsonValue laneArr = report::JsonValue::array();
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            report::JsonValue l = report::JsonValue::object();
            l["shard"] = double(i);
            l["execNs"] = double(lanes[i].execNs);
            l["barrierWaitNs"] = double(lanes[i].barrierWaitNs);
            laneArr.push(std::move(l));
        }
        point["lanes"] = std::move(laneArr);
        point["perWorkload"] = std::move(perWl);
        runs.push(std::move(point));
        if (ctx.stop && ctx.stop->load(std::memory_order_relaxed))
            break;
    }
    doc["runs"] = std::move(runs);

    if (ctx.simperf)
        ctx.simperf->add("scaling", allRecords);
    return doc;
}

} // namespace stashbench
