/**
 * @file
 * Ablation: writeback chunk granularity (paper Section 4.2,
 * footnote 4 fixes it at 64 B).
 *
 * Smaller chunks track dirty data more precisely (fewer spurious
 * writeback words) but need more state bits per stash; larger chunks
 * amortize the per-chunk map index at the cost of coarser tracking.
 * The Implicit and On-demand microbenchmarks bracket the tradeoff:
 * dense writes are insensitive, sparse writes punish large chunks.
 */

#include "bench_util.hh"

using namespace benchutil;

int
main(int argc, char **argv)
{
    const bool quick = quickMode(argc, argv);
    std::printf("Ablation: stash writeback chunk granularity\n\n");
    std::printf("%-10s %8s %12s %12s %16s %14s\n", "workload",
                "chunk", "cycles", "energy(nJ)", "words written back",
                "flit-hops");

    for (const char *name : {"Implicit", "On-demand", "Reuse"}) {
        for (unsigned chunk : {64u, 128u, 256u}) {
            SystemConfig cfg = SystemConfig::microbenchmarkDefault();
            cfg.stashChunkBytes = chunk;
            RunResult r =
                runMicrobenchmark(name, MemOrg::Stash, quick, &cfg);
            std::printf("%-10s %6uB %12llu %12.0f %16llu %14llu\n",
                        name, chunk,
                        (unsigned long long)r.gpuCycles,
                        r.energy.total() / 1e3,
                        (unsigned long long)
                            r.stats.stash.wordsWrittenBack,
                        (unsigned long long)
                            r.stats.noc.totalFlitHops());
        }
    }
    std::printf("\nnote: 64 B is the paper's choice; per-word "
                "coherence state bounds the\nimprecision, so only "
                "the per-chunk index/bit overhead varies below "
                "64 B.\n");
    return 0;
}
