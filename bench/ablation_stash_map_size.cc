/**
 * @file
 * Ablation: stash-map capacity (paper Section 4.1.3 sizes it at 64:
 * 8 concurrent thread blocks x 4 maps, doubled for lazy-writeback
 * headroom).
 *
 * A smaller map recycles entries sooner: replaced entries must drain
 * their dirty data immediately (replacement stalls) and cross-kernel
 * replication matches disappear.  LUD (3 mappings per block, deep
 * kernel sequence) and the Reuse microbenchmark show both effects.
 */

#include "bench_util.hh"

using namespace benchutil;

int
main(int argc, char **argv)
{
    const bool quick = quickMode(argc, argv);
    std::printf("Ablation: stash-map entries\n\n");
    std::printf("%-10s %8s %12s %14s %18s %14s\n", "workload",
                "entries", "cycles", "repl. hits",
                "replacement stalls", "flit-hops");

    auto report = [](const char *name, unsigned entries,
                     const RunResult &r) {
        std::printf("%-10s %8u %12llu %14llu %18llu %14llu\n", name,
                    entries, (unsigned long long)r.gpuCycles,
                    (unsigned long long)r.stats.stash.replicationHits,
                    (unsigned long long)
                        r.stats.stash.mapReplacementStalls,
                    (unsigned long long)r.stats.noc.totalFlitHops());
    };

    for (unsigned entries : {16u, 32u, 64u, 128u}) {
        SystemConfig cfg = SystemConfig::microbenchmarkDefault();
        cfg.stashMapEntries = entries;
        report("Reuse", entries,
               runMicrobenchmark("Reuse", MemOrg::Stash, quick, &cfg));
    }
    std::printf("\n");
    for (unsigned entries : {16u, 32u, 64u, 128u}) {
        SystemConfig cfg = SystemConfig::applicationDefault();
        cfg.stashMapEntries = entries;
        report("LUD", entries,
               runApplication("LUD", MemOrg::StashG, quick, &cfg));
    }
    return 0;
}
