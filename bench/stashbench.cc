/**
 * @file
 * stashbench: the single bench CLI.
 *
 * Replaces the per-figure bench binaries: every paper table, figure,
 * and ablation is a named bench (see --list) that sweeps its run
 * grid — in parallel with --jobs — and writes a BENCH_<name>.json
 * artifact.  --render-md regenerates EXPERIMENTS.md from those
 * artifacts.  Exits nonzero when any run fails validation.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <system_error>

#include "benches.hh"
#include "driver/bench_args.hh"
#include "driver/farm.hh"
#include "driver/sample.hh"
#include "driver/sweep.hh"
#include "mem/backend/mem_backend.hh"
#include "workloads/workload_factory.hh"

namespace
{

using namespace stashsim;
using namespace stashbench;

/**
 * SIGINT/SIGTERM set this; the sweep layer polls it at phase
 * boundaries, drops a final checkpoint for every in-flight run,
 * releases its leases, and the CLI exits with
 * farm::interruptedExitCode so wrappers can tell "interrupted,
 * resumable" from "failed".
 */
std::atomic<bool> g_stop{false};

extern "C" void
stopHandler(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

int
listBenches()
{
    std::printf("%-30s %-18s %s\n", "bench", "scales", "description");
    for (const BenchInfo &b : benchList())
        std::printf("%-30s %-18s %s\n", b.name, b.scales, b.desc);
    std::printf("\n%-30s %-18s %s\n", "workload", "kind",
                "description");
    for (const auto &info :
         workloads::WorkloadFactory::instance().list()) {
        std::printf("%-30s %-18s %s\n", info.name.c_str(),
                    info.kindName(), info.description.c_str());
    }
    return 0;
}

int
listWorkloads()
{
    std::printf("%-12s %-15s %s\n", "workload", "kind", "description");
    for (const auto &info :
         workloads::WorkloadFactory::instance().list()) {
        std::printf("%-12s %-15s %s\n", info.name.c_str(),
                    info.kindName(), info.description.c_str());
    }
    return 0;
}

/** Resolves --backend into @p ctx; exit-2 diagnostic on failure. */
bool
resolveBackend(const BenchArgs &args, BenchContext &ctx)
{
    if (args.backend.empty() ||
        memBackendFromName(args.backend, ctx.backend))
        return true;
    std::string names;
    for (const MemBackendInfo &b : memBackendList()) {
        if (!names.empty())
            names += ", ";
        names += b.name;
    }
    std::fprintf(stderr,
                 "stashbench: unknown memory backend '%s' "
                 "(valid: %s; --list --json has descriptions)\n",
                 args.backend.c_str(), names.c_str());
    return false;
}

/** The validation bounds every CLI trace flow parses against. */
workloads::TraceLimits
traceLimits()
{
    const SystemConfig cfg = SystemConfig::applicationDefault();
    workloads::TraceLimits lim;
    lim.maxCus = cfg.numGpuCus;
    lim.maxCpuCores = cfg.numCpuCores;
    lim.localBytes = cfg.localBytes;
    return lim;
}

bool
writeTraceFile(const std::string &path,
               const workloads::TraceData &trace)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "stashbench: cannot write %s\n",
                     path.c_str());
        return false;
    }
    os << workloads::writeTrace(trace);
    return bool(os);
}

/** --trace-from NAME --trace-record FILE: record, no simulation. */
int
traceFromMain(const BenchArgs &args)
{
    const auto &factory = workloads::WorkloadFactory::instance();
    if (!factory.find(args.traceFrom)) {
        std::fprintf(stderr,
                     "stashbench: unknown workload '%s' for "
                     "--trace-from (--list shows the choices)\n",
                     args.traceFrom.c_str());
        return 2;
    }
    workloads::TraceData trace;
    try {
        // Record from the cache-organization build: every access is
        // global there, which is exactly what the trace grammar's
        // ld/st records describe.
        workloads::WorkloadParams p;
        p.org = MemOrg::Cache;
        p.scale = args.scale;
        const Workload wl = factory.make(args.traceFrom, p);
        trace =
            workloads::traceFromWorkload(wl, traceLimits().maxCus);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "stashbench: cannot record %s: %s\n",
                     args.traceFrom.c_str(), e.what());
        return 2;
    }
    if (!writeTraceFile(args.traceRecord, trace))
        return 1;
    std::fprintf(stderr,
                 "recorded %s (%s scale) -> %s: %llu records, "
                 "%zu phases\n",
                 args.traceFrom.c_str(),
                 workloads::scaleName(args.scale),
                 args.traceRecord.c_str(),
                 (unsigned long long)trace.records(),
                 trace.phases.size());
    return 0;
}

/**
 * --trace-replay FILE: parse, then either normalize into
 * --trace-record (no simulation) or sweep the trace over
 * scratchGD/cache/stash and write BENCH_replay.json.
 */
int
traceReplayMain(const BenchArgs &args)
{
    std::ifstream is(args.traceReplay);
    if (!is) {
        std::fprintf(stderr, "stashbench: cannot read %s\n",
                     args.traceReplay.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    workloads::TraceData trace;
    std::string err;
    if (!workloads::parseTrace(buf.str(), traceLimits(), trace,
                               err)) {
        std::fprintf(stderr, "stashbench: %s: %s\n",
                     args.traceReplay.c_str(), err.c_str());
        return 2;
    }
    if (!args.traceRecord.empty()) {
        // Normalize-only mode: the canonical rendering is a
        // parse/write fixed point, so record->replay->record round
        // trips byte-identically.
        if (!writeTraceFile(args.traceRecord, trace))
            return 1;
        std::fprintf(stderr,
                     "normalized %s -> %s: %llu records, %zu "
                     "phases\n",
                     args.traceReplay.c_str(),
                     args.traceRecord.c_str(),
                     (unsigned long long)trace.records(),
                     trace.phases.size());
        return 0;
    }

    BenchContext ctx;
    ctx.scale = args.scale;
    ctx.jobs = args.jobs;
    ctx.shards = args.shards;
    if (!resolveBackend(args, ctx))
        return 2;
    ctx.progress = &std::cerr;
    ctx.traceDir = args.traceDir;
    ctx.components = args.components;
    report::JsonValue doc =
        runReplayBench(ctx, trace, args.traceReplay);
    const std::string path = args.outDir + "/BENCH_replay.json";
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "stashbench: cannot write %s\n",
                     path.c_str());
        return 1;
    }
    doc.write(os);
    os << "\n";
    const bool ok = allRunsValidated(doc);
    std::fprintf(stderr, "wrote %s%s\n", path.c_str(),
                 ok ? "" : " (FAILED validation)");
    return ok ? 0 : 1;
}

/**
 * --sample / --sample-unsampled: warm once, fan measured intervals
 * out from that one checkpoint across the delta list (DESIGN.md §17),
 * writing BENCH_sample.json.  Farm state defaults to
 * <out>/samplestate; --farm/--restore point the campaign at a shared
 * state directory instead, with the usual lease semantics.
 */
int
sampleMain(const BenchArgs &args)
{
    SampleRequest req;
    req.workload = args.sampleWorkload;
    if (!workloads::WorkloadFactory::instance().find(req.workload)) {
        std::fprintf(stderr,
                     "stashbench: unknown workload '%s' for "
                     "--sample-workload (--list shows the choices)\n",
                     req.workload.c_str());
        return 2;
    }
    if (!memOrgFromName(args.sampleOrg, req.org)) {
        std::fprintf(stderr,
                     "stashbench: unknown memory organization '%s' "
                     "for --sample-org\n",
                     args.sampleOrg.c_str());
        return 2;
    }
    std::string err;
    if (!parseSampleDeltas(args.sampleDeltas, req.deltas, err)) {
        std::fprintf(stderr, "stashbench: --sample-deltas: %s\n",
                     err.c_str());
        return 2;
    }
    req.scale = args.scale;
    req.intervalPhases = args.sampleInterval;
    req.unsampled = args.sampleUnsampled;
    req.threads = args.jobs;
    req.shardsPerRun = args.shards;
    req.checkpointEveryTicks = Tick(args.checkpointEvery);
    req.progress = &std::cerr;
    req.stop = &g_stop;
    req.workerId = args.workerId;
    req.leaseTtlMs = args.leaseTtlSec * 1000;
    req.maxAttempts = args.maxAttempts;
    if (!args.farmDir.empty())
        req.stateDir = args.farmDir;
    else if (!args.restoreDir.empty())
        req.stateDir = args.restoreDir;
    else
        req.stateDir = args.outDir + "/samplestate";
    std::signal(SIGINT, stopHandler);
    std::signal(SIGTERM, stopHandler);

    SampleOutcome out;
    try {
        out = runSample(req);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "stashbench: sample: %s\n", e.what());
        return 1;
    }
    if (out.counters.interrupted) {
        std::fprintf(stderr,
                     "stashbench: sample interrupted; state saved in "
                     "%s — resumable (exit %d)\n",
                     req.stateDir.c_str(), farm::interruptedExitCode);
        return farm::interruptedExitCode;
    }
    if (!out.warm.result.validated ||
        !out.warm.result.errors.empty()) {
        std::fprintf(stderr, "stashbench: sample warm stage failed");
        for (const std::string &e : out.warm.result.errors)
            std::fprintf(stderr, "\n  %s", e.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }

    const report::JsonValue doc = sampleToJson(req, out);
    const std::string path = args.outDir + "/BENCH_sample.json";
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "stashbench: cannot write %s\n",
                     path.c_str());
        return 1;
    }
    doc.write(os);
    os << "\n";
    const bool ok = allRunsValidated(doc);
    std::fprintf(stderr,
                 "wrote %s (%zu delta%s from %s)%s\n", path.c_str(),
                 out.runs.size(), out.runs.size() == 1 ? "" : "s",
                 out.sampledFrom.checkpoint.c_str(),
                 ok ? "" : " (FAILED validation)");
    return ok ? 0 : 1;
}

int
renderMarkdown(const BenchArgs &args)
{
    std::string err;
    if (args.renderMd == "-") {
        if (!renderExperimentsMd(args.outDir, std::cout, err)) {
            std::fprintf(stderr, "stashbench: %s\n", err.c_str());
            return 1;
        }
        return 0;
    }
    std::ofstream os(args.renderMd);
    if (!os) {
        std::fprintf(stderr, "stashbench: cannot write %s\n",
                     args.renderMd.c_str());
        return 1;
    }
    if (!renderExperimentsMd(args.outDir, os, err)) {
        std::fprintf(stderr, "stashbench: %s\n", err.c_str());
        return 1;
    }
    std::fprintf(stderr, "rendered %s from %s/BENCH_*.json\n",
                 args.renderMd.c_str(), args.outDir.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args;
    std::string err;
    if (!BenchArgs::parse(argc, argv, args, err)) {
        std::fprintf(stderr, "stashbench: %s\n%s", err.c_str(),
                     BenchArgs::usage("stashbench").c_str());
        return 2;
    }
    if (args.help) {
        std::fputs(BenchArgs::usage("stashbench").c_str(), stdout);
        return 0;
    }
    if (args.list) {
        if (args.json) {
            benchInventoryJson().write(std::cout);
            std::cout << "\n";
            return 0;
        }
        return listBenches();
    }
    if (args.listWorkloads)
        return listWorkloads();
    // Trace flows: --trace-from records a workload (no simulation),
    // --trace-replay parses a trace and either normalizes it into
    // --trace-record or sweeps it into BENCH_replay.json.
    if (!args.traceFrom.empty() && !args.traceReplay.empty()) {
        std::fprintf(stderr,
                     "stashbench: --trace-from and --trace-replay "
                     "are mutually exclusive\n");
        return 2;
    }
    if (!args.traceFrom.empty()) {
        if (args.traceRecord.empty()) {
            std::fprintf(stderr,
                         "stashbench: --trace-from requires "
                         "--trace-record FILE for the output\n");
            return 2;
        }
        return traceFromMain(args);
    }
    if (!args.traceReplay.empty())
        return traceReplayMain(args);
    if (!args.traceRecord.empty()) {
        std::fprintf(stderr,
                     "stashbench: --trace-record needs "
                     "--trace-from NAME or --trace-replay FILE as "
                     "the source\n");
        return 2;
    }
    // Sampled simulation is its own flow, like the trace modes.
    if (args.sample || args.sampleUnsampled)
        return sampleMain(args);
    // --render-md alone renders from existing artifacts; with bench
    // names it refreshes those artifacts first.
    if (!args.renderMd.empty() && args.benches.empty())
        return renderMarkdown(args);

    std::vector<const BenchInfo *> selected;
    if (args.benches.empty()) {
        // Explicit-only benches (scaling: host-dependent artifact)
        // run only when named, keeping the default artifact set
        // deterministic.
        for (const BenchInfo &b : benchList()) {
            if (b.defaultRun)
                selected.push_back(&b);
        }
    } else {
        for (const std::string &name : args.benches) {
            const BenchInfo *b = findBench(name);
            if (!b) {
                std::fprintf(stderr,
                             "stashbench: unknown bench '%s' "
                             "(--list shows the choices)\n",
                             name.c_str());
                return 2;
            }
            selected.push_back(b);
        }
    }

    BenchContext ctx;
    ctx.scale = args.scale;
    ctx.jobs = args.jobs;
    ctx.shards = args.shards;
    if (!resolveBackend(args, ctx))
        return 2;
    ctx.progress = &std::cerr;
    ctx.outDir = args.outDir;
    ctx.traceDir = args.traceDir;
    ctx.components = args.components;
    SimperfCollector simperf;
    simperf.shards = args.shards;
    ctx.simperf = &simperf;
    // --farm names the shared state directory and implies resume
    // (workers serve each other's cached results); --restore names
    // the state directory and turns resume on; --checkpoint-every
    // alone drops state under the artifact dir so a later --restore
    // can pick it up.
    if (!args.farmDir.empty()) {
        ctx.stateDir = args.farmDir;
        ctx.resume = true;
        ctx.workerId = args.workerId;
        ctx.leaseTtlMs = args.leaseTtlSec * 1000;
        ctx.maxAttempts = args.maxAttempts;
    } else if (!args.restoreDir.empty()) {
        ctx.stateDir = args.restoreDir;
        ctx.resume = true;
    } else if (args.checkpointEvery > 0) {
        ctx.stateDir = args.outDir + "/checkpoints";
    }
    ctx.checkpointEvery = args.checkpointEvery;
    ctx.stop = &g_stop;
    std::signal(SIGINT, stopHandler);
    std::signal(SIGTERM, stopHandler);
    if (!ctx.stateDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(ctx.stateDir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "stashbench: cannot create state dir %s\n",
                         ctx.stateDir.c_str());
            return 1;
        }
    }

    SweepOptions sizing;
    sizing.threads = args.jobs;
    sizing.shardsPerRun = args.shards;
    const unsigned threads =
        SweepDriver(sizing).threadsFor(unsigned(-1));
    std::fprintf(stderr,
                 "stashbench: %zu bench%s, scale %s, %u sweep "
                 "thread%s, %u shard%s/run\n",
                 selected.size(), selected.size() == 1 ? "" : "es",
                 workloads::scaleName(args.scale), threads,
                 threads == 1 ? "" : "s", args.shards,
                 args.shards == 1 ? "" : "s");

    bool all_ok = true;
    const auto wall_start = std::chrono::steady_clock::now();
    for (const BenchInfo *b : selected) {
        std::fprintf(stderr, "=== %s: %s ===\n", b->name, b->title);
        report::JsonValue doc = b->run(ctx);
        if (g_stop.load(std::memory_order_relaxed)) {
            // Interrupted mid-sweep: the document is incomplete, so
            // no artifact is written — the state dir already carries
            // the final checkpoints, and rerunning with --restore (or
            // the same --farm dir) picks the campaign back up.
            std::fprintf(stderr,
                         "stashbench: interrupted during %s; state "
                         "saved%s%s — resumable (exit %d)\n",
                         b->name, ctx.stateDir.empty() ? "" : " in ",
                         ctx.stateDir.c_str(),
                         farm::interruptedExitCode);
            return farm::interruptedExitCode;
        }
        const std::string path =
            args.outDir + "/BENCH_" + b->name + ".json";
        std::ofstream os(path);
        if (!os) {
            std::fprintf(stderr, "stashbench: cannot write %s\n",
                         path.c_str());
            return 1;
        }
        doc.write(os);
        os << "\n";
        const bool ok = allRunsValidated(doc);
        all_ok = all_ok && ok;
        std::fprintf(stderr, "wrote %s%s\n", path.c_str(),
                     ok ? "" : " (FAILED validation)");
    }
    const double wall_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    // The host-throughput artifact: the only document with wall-clock
    // numbers in it, deliberately separate from the deterministic
    // BENCH_<name>.json files.
    {
        report::JsonValue doc = simperf.toJson(
            workloads::scaleName(args.scale), wall_seconds);
        const std::string path = args.outDir + "/BENCH_simperf.json";
        std::ofstream os(path);
        if (!os) {
            std::fprintf(stderr, "stashbench: cannot write %s\n",
                         path.c_str());
            return 1;
        }
        doc.write(os);
        os << "\n";
        const report::JsonValue *tot = doc.find("totals");
        const double events = tot->find("events")->asNumber();
        const double eps = tot->find("eventsPerSec")->asNumber();
        std::fprintf(stderr,
                     "wrote %s\n"
                     "stashbench: %.0f events in %.2f s host wall "
                     "(%.0f events/sec aggregate)\n",
                     path.c_str(), events, wall_seconds, eps);
    }

    if (!args.renderMd.empty()) {
        const int rc = renderMarkdown(args);
        if (rc != 0)
            return rc;
    }
    if (!all_ok) {
        std::fprintf(stderr,
                     "stashbench: one or more runs failed "
                     "validation\n");
        return 1;
    }
    return 0;
}
