/**
 * @file
 * Reproduces Figure 5: the four microbenchmarks under Scratch,
 * ScratchGD (scratchpad + DMA), Cache, and Stash.
 *
 * Four panels, all normalized to the Scratch configuration:
 *   (a) execution time (GPU cycles end-to-end)
 *   (b) dynamic energy, with the five-way breakdown
 *       (GPU core+ / L1 D$ / scratch-stash / L2 $ / N/W)
 *   (c) GPU instruction count
 *   (d) network traffic (flit crossings), split read/write/WB
 *
 * The paper's average results for comparison (Section 6.2): stash
 * reduces cycles by 13% / 27% / 14% and energy by 35% / 53% / 32%
 * versus scratchpad / cache / DMA respectively.
 */

#include "bench_util.hh"

using namespace benchutil;

namespace
{

const std::vector<MemOrg> configs = {MemOrg::Scratch,
                                     MemOrg::ScratchGD, MemOrg::Cache,
                                     MemOrg::Stash};

struct Row
{
    std::string name;
    std::map<MemOrg, RunResult> results;
};

void
printPanelHeader(const char *title)
{
    std::printf("--- %s (normalized to Scratch) ---\n", title);
    std::printf("%-11s", "");
    for (MemOrg org : configs)
        std::printf(" %9s", memOrgName(org));
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = quickMode(argc, argv);
    const SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    printSystemBanner(
        "Figure 5: microbenchmark comparison "
        "(Implicit / Pollution / On-demand / Reuse)",
        cfg, quick);

    std::vector<Row> rows;
    for (const auto &name : workloads::microbenchmarkNames()) {
        Row row;
        row.name = name;
        for (MemOrg org : configs) {
            std::fprintf(stderr, "running %s/%s...\n", name.c_str(),
                         memOrgName(org));
            row.results[org] = runMicrobenchmark(name, org, quick);
        }
        rows.push_back(std::move(row));
    }

    // ---- (a) execution time ------------------------------------
    printPanelHeader("(a) Execution time");
    std::map<MemOrg, double> geo_time;
    for (auto &row : rows) {
        const double base =
            double(row.results[MemOrg::Scratch].gpuCycles);
        std::printf("%-11s", row.name.c_str());
        for (MemOrg org : configs) {
            const double v = double(row.results[org].gpuCycles) / base;
            geo_time[org] += v;
            std::printf(" %9.2f", v);
        }
        std::printf("\n");
    }
    std::printf("%-11s", "AVERAGE");
    for (MemOrg org : configs)
        std::printf(" %9.2f", geo_time[org] / rows.size());
    std::printf("\n  paper avg: Stash = 0.87 vs Scratch, 0.73 vs "
                "Cache, 0.86 vs ScratchGD\n\n");

    // ---- (b) dynamic energy ------------------------------------
    printPanelHeader("(b) Dynamic energy");
    std::map<MemOrg, double> avg_energy;
    for (auto &row : rows) {
        const double base =
            row.results[MemOrg::Scratch].energy.total();
        std::printf("%-11s", row.name.c_str());
        for (MemOrg org : configs) {
            const double v = row.results[org].energy.total() / base;
            avg_energy[org] += v;
            std::printf(" %9.2f", v);
        }
        std::printf("\n");
        // Per-configuration breakdown rows (the stacked-bar data).
        for (MemOrg org : configs) {
            const EnergyBreakdown &e = row.results[org].energy;
            std::printf("  %-9s core+ %4.1f%%  L1 %4.1f%%  "
                        "scr/stash %4.1f%%  L2 %4.1f%%  N/W %4.1f%%\n",
                        memOrgName(org), 100 * e.gpuCore / e.total(),
                        100 * e.l1 / e.total(),
                        100 * e.local / e.total(),
                        100 * e.l2 / e.total(),
                        100 * e.noc / e.total());
        }
    }
    std::printf("%-11s", "AVERAGE");
    for (MemOrg org : configs)
        std::printf(" %9.2f", avg_energy[org] / rows.size());
    std::printf("\n  paper avg: Stash = 0.65 vs Scratch, 0.47 vs "
                "Cache, 0.68 vs ScratchGD\n\n");

    // ---- (c) GPU instruction count ------------------------------
    printPanelHeader("(c) GPU instruction count");
    for (auto &row : rows) {
        const double base =
            double(row.results[MemOrg::Scratch].stats.gpu.instructions);
        std::printf("%-11s", row.name.c_str());
        for (MemOrg org : configs) {
            std::printf(" %9.2f",
                        double(row.results[org].stats.gpu.instructions) /
                            base);
        }
        std::printf("\n");
    }
    std::printf("  paper: Implicit Stash executes ~40%% fewer "
                "instructions than Scratch\n\n");

    // ---- (d) network traffic ------------------------------------
    printPanelHeader("(d) Network traffic (flit crossings)");
    for (auto &row : rows) {
        const double base = double(
            row.results[MemOrg::Scratch].stats.noc.totalFlitHops());
        std::printf("%-11s", row.name.c_str());
        for (MemOrg org : configs) {
            std::printf(
                " %9.2f",
                double(row.results[org].stats.noc.totalFlitHops()) /
                    base);
        }
        std::printf("\n");
        for (MemOrg org : configs) {
            const NocStats &n = row.results[org].stats.noc;
            const double t = double(n.totalFlitHops());
            std::printf("  %-9s read %4.1f%%  write %4.1f%%  "
                        "WB %4.1f%%\n",
                        memOrgName(org), 100 * n.flitHops[0] / t,
                        100 * n.flitHops[1] / t,
                        100 * n.flitHops[2] / t);
        }
    }
    std::printf("\n  paper: On-demand Stash has ~48%% less traffic "
                "than DMA; Reuse ~83%% less\n");
    return 0;
}
