/**
 * @file
 * Ablation: on-demand access sparsity — where does the stash/DMA
 * crossover fall?
 *
 * The On-demand microbenchmark accesses 1 element out of 32 per warp
 * (the paper's setting).  This sweep varies the density: at 32/32
 * every element is touched and DMA's bulk transfer amortizes best;
 * as accesses thin out, the stash's on-demand movement wins on
 * traffic and energy (the paper reports 48% lower energy and traffic
 * at 1/32).
 */

#include <algorithm>

#include "bench_util.hh"
#include "workloads/kernel_builder.hh"

using namespace benchutil;

namespace
{

/** On-demand variant touching `density` of 32 lanes per warp. */
Workload
makeSparse(MemOrg org, unsigned density, unsigned n, unsigned cores)
{
    // Reuse the standard microbenchmark machinery by building the
    // kernel here with the same tile layout as On-demand.
    constexpr Addr base = 0x1000'0000;
    constexpr unsigned object_bytes = 64;
    const unsigned tpb = 256;
    const unsigned warps = tpb / 32;
    const unsigned num_tbs = n / tpb;

    Workload wl;
    wl.name = "sparsity";
    wl.init = [=](FunctionalMem &fm) {
        for (unsigned i = 0; i < n; ++i)
            fm.writeWord(base + Addr(i) * object_bytes, i);
    };

    Kernel k;
    k.name = "sparse_update";
    for (unsigned tb = 0; tb < num_tbs; ++tb) {
        TbBuilder b(org, warps);
        TileUse use;
        use.tile.globalBase = base + Addr(tb) * tpb * object_bytes;
        use.tile.fieldSize = wordBytes;
        use.tile.objectSize = object_bytes;
        use.tile.rowSize = tpb;
        use.tile.numStrides = 1;
        const unsigned t = b.addTile(use);
        for (unsigned w = 0; w < warps; ++w) {
            b.compute(w, 1); // the runtime condition
            std::vector<std::uint32_t> elems;
            for (unsigned l = 0; l < density; ++l)
                elems.push_back(w * 32 + (l * 7 + tb) % 32);
            std::sort(elems.begin(), elems.end());
            elems.erase(std::unique(elems.begin(), elems.end()),
                        elems.end());
            b.accessTile(w, t, elems, false);
            b.compute(w, 1, 1);
            b.accessTile(w, t, elems, true);
        }
        k.blocks.push_back(b.build());
    }
    wl.phases.push_back(Phase::gpu(std::move(k)));
    (void)cores;
    return wl;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = quickMode(argc, argv);
    const unsigned n = quick ? 2048 : 8192;

    std::printf("Ablation: on-demand sparsity sweep "
                "(accessed lanes per 32)\n\n");
    std::printf("%8s %12s %12s %14s %14s\n", "density",
                "Stash cyc", "DMA cyc", "Stash flits", "DMA flits");

    for (unsigned density : {1u, 2u, 4u, 8u, 16u, 32u}) {
        RunResult rs, rd;
        {
            SystemConfig cfg = SystemConfig::microbenchmarkDefault();
            cfg.memOrg = MemOrg::Stash;
            System sys(cfg);
            rs = sys.run(makeSparse(MemOrg::Stash, density, n,
                                    cfg.numCpuCores));
        }
        {
            SystemConfig cfg = SystemConfig::microbenchmarkDefault();
            cfg.memOrg = MemOrg::ScratchGD;
            System sys(cfg);
            rd = sys.run(makeSparse(MemOrg::ScratchGD, density, n,
                                    cfg.numCpuCores));
        }
        std::printf("%6u/32 %12llu %12llu %14llu %14llu\n", density,
                    (unsigned long long)rs.gpuCycles,
                    (unsigned long long)rd.gpuCycles,
                    (unsigned long long)rs.stats.noc.totalFlitHops(),
                    (unsigned long long)rd.stats.noc.totalFlitHops());
    }
    std::printf("\npaper reference at 1/32: stash has ~48%% lower "
                "traffic and energy than DMA\n");
    return 0;
}
