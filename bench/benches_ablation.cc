/**
 * @file
 * The ablation benches: data replication on/off, writeback chunk
 * granularity, stash-map capacity, miss translation latency, and the
 * on-demand sparsity sweep.  Each run object carries its knob in
 * "params" and the bench's discriminating counters in "metrics".
 */

#include "benches.hh"

#include <algorithm>

#include "workloads/kernel_builder.hh"

namespace stashbench
{

namespace
{

report::JsonValue
stashMetrics(const RunRecord &rec)
{
    const StashStats &st = rec.result.stats.stash;
    report::JsonValue m = report::JsonValue::object();
    m["replicationHits"] = double(st.replicationHits);
    m["wordsWrittenBack"] = double(st.wordsWrittenBack);
    m["mapReplacementStalls"] = double(st.mapReplacementStalls);
    return m;
}

} // namespace

report::JsonValue
runAblationReplication(const BenchContext &ctx)
{
    report::JsonValue doc =
        benchDoc(ctx, "ablation_replication",
                 findBench("ablation_replication")->title);

    std::vector<RunSpec> specs;
    std::vector<bool> knob;
    auto add = [&](const char *name, MemOrg org, bool app, bool opt) {
        RunSpec spec;
        spec.workload = name;
        spec.org = org;
        spec.scale = ctx.scale;
        SystemConfig cfg = app ? SystemConfig::applicationDefault()
                               : SystemConfig::microbenchmarkDefault();
        cfg.stashReplicationOpt = opt;
        spec.config = cfg;
        spec.labelOverride = std::string(name) + "/repl-" +
                             (opt ? "on" : "off");
        specs.push_back(std::move(spec));
        knob.push_back(opt);
    };
    for (const char *name : {"Reuse", "On-demand"}) {
        for (bool opt : {true, false})
            add(name, MemOrg::Stash, false, opt);
    }
    for (const char *name : {"LUD", "SGEMM"}) {
        for (bool opt : {true, false})
            add(name, MemOrg::Stash, true, opt);
    }

    std::vector<RunRecord> records =
        sweepSpecs(ctx, "ablation_replication", std::move(specs));
    report::JsonValue runs = report::JsonValue::array();
    for (std::size_t i = 0; i < records.size(); ++i) {
        report::JsonValue run = runToJson(records[i], ctx.components);
        report::JsonValue params = report::JsonValue::object();
        params["replication"] = bool(knob[i]);
        run["params"] = std::move(params);
        run["metrics"] = stashMetrics(records[i]);
        runs.push(std::move(run));
    }
    doc["runs"] = std::move(runs);
    return doc;
}

report::JsonValue
runAblationChunkGranularity(const BenchContext &ctx)
{
    report::JsonValue doc =
        benchDoc(ctx, "ablation_chunk_granularity",
                 findBench("ablation_chunk_granularity")->title);

    std::vector<RunSpec> specs;
    std::vector<unsigned> knob;
    for (const char *name : {"Implicit", "On-demand", "Reuse"}) {
        for (unsigned chunk : {64u, 128u, 256u}) {
            RunSpec spec;
            spec.workload = name;
            spec.org = MemOrg::Stash;
            spec.scale = ctx.scale;
            SystemConfig cfg = SystemConfig::microbenchmarkDefault();
            cfg.stashChunkBytes = chunk;
            spec.config = cfg;
            spec.labelOverride =
                std::string(name) + "/chunk-" + std::to_string(chunk);
            specs.push_back(std::move(spec));
            knob.push_back(chunk);
        }
    }

    std::vector<RunRecord> records = sweepSpecs(
        ctx, "ablation_chunk_granularity", std::move(specs));
    report::JsonValue runs = report::JsonValue::array();
    for (std::size_t i = 0; i < records.size(); ++i) {
        report::JsonValue run = runToJson(records[i], ctx.components);
        report::JsonValue params = report::JsonValue::object();
        params["chunkBytes"] = knob[i];
        run["params"] = std::move(params);
        run["metrics"] = stashMetrics(records[i]);
        runs.push(std::move(run));
    }
    doc["runs"] = std::move(runs);
    return doc;
}

report::JsonValue
runAblationStashMapSize(const BenchContext &ctx)
{
    report::JsonValue doc =
        benchDoc(ctx, "ablation_stash_map_size",
                 findBench("ablation_stash_map_size")->title);

    std::vector<RunSpec> specs;
    std::vector<unsigned> knob;
    auto add = [&](const char *name, MemOrg org, bool app,
                   unsigned entries) {
        RunSpec spec;
        spec.workload = name;
        spec.org = org;
        spec.scale = ctx.scale;
        SystemConfig cfg = app ? SystemConfig::applicationDefault()
                               : SystemConfig::microbenchmarkDefault();
        cfg.stashMapEntries = entries;
        spec.config = cfg;
        spec.labelOverride = std::string(name) + "/entries-" +
                             std::to_string(entries);
        specs.push_back(std::move(spec));
        knob.push_back(entries);
    };
    for (unsigned entries : {16u, 32u, 64u, 128u})
        add("Reuse", MemOrg::Stash, false, entries);
    for (unsigned entries : {16u, 32u, 64u, 128u})
        add("LUD", MemOrg::StashG, true, entries);

    std::vector<RunRecord> records =
        sweepSpecs(ctx, "ablation_stash_map_size", std::move(specs));
    report::JsonValue runs = report::JsonValue::array();
    for (std::size_t i = 0; i < records.size(); ++i) {
        report::JsonValue run = runToJson(records[i], ctx.components);
        report::JsonValue params = report::JsonValue::object();
        params["mapEntries"] = knob[i];
        run["params"] = std::move(params);
        run["metrics"] = stashMetrics(records[i]);
        runs.push(std::move(run));
    }
    doc["runs"] = std::move(runs);
    return doc;
}

report::JsonValue
runAblationTranslationLatency(const BenchContext &ctx)
{
    report::JsonValue doc =
        benchDoc(ctx, "ablation_translation_latency",
                 findBench("ablation_translation_latency")->title);

    std::vector<RunSpec> specs;
    std::vector<unsigned> knob;
    for (const char *name : {"Implicit", "On-demand", "Reuse"}) {
        for (unsigned xl : {0u, 5u, 10u, 20u, 40u}) {
            RunSpec spec;
            spec.workload = name;
            spec.org = MemOrg::Stash;
            spec.scale = ctx.scale;
            SystemConfig cfg = SystemConfig::microbenchmarkDefault();
            cfg.stashTranslationCycles = xl;
            spec.config = cfg;
            spec.labelOverride =
                std::string(name) + "/xl-" + std::to_string(xl);
            specs.push_back(std::move(spec));
            knob.push_back(xl);
        }
    }

    std::vector<RunRecord> records = sweepSpecs(
        ctx, "ablation_translation_latency", std::move(specs));
    report::JsonValue runs = report::JsonValue::array();
    for (std::size_t i = 0; i < records.size(); ++i) {
        report::JsonValue run = runToJson(records[i], ctx.components);
        report::JsonValue params = report::JsonValue::object();
        params["translationCycles"] = knob[i];
        run["params"] = std::move(params);
        runs.push(std::move(run));
    }
    doc["runs"] = std::move(runs);
    return doc;
}

namespace
{

/** On-demand variant touching `density` of 32 lanes per warp. */
Workload
makeSparse(MemOrg org, unsigned density, unsigned n)
{
    // Built here with the same tile layout as the On-demand
    // microbenchmark, varying only the touched-lane density.
    constexpr Addr base = 0x1000'0000;
    constexpr unsigned object_bytes = 64;
    const unsigned tpb = 256;
    const unsigned warps = tpb / 32;
    const unsigned num_tbs = n / tpb;

    Workload wl;
    wl.name = "sparsity";
    wl.init = [=](FunctionalMem &fm) {
        for (unsigned i = 0; i < n; ++i)
            fm.writeWord(base + Addr(i) * object_bytes, i);
    };

    Kernel k;
    k.name = "sparse_update";
    for (unsigned tb = 0; tb < num_tbs; ++tb) {
        TbBuilder b(org, warps);
        TileUse use;
        use.tile.globalBase = base + Addr(tb) * tpb * object_bytes;
        use.tile.fieldSize = wordBytes;
        use.tile.objectSize = object_bytes;
        use.tile.rowSize = tpb;
        use.tile.numStrides = 1;
        const unsigned t = b.addTile(use);
        for (unsigned w = 0; w < warps; ++w) {
            b.compute(w, 1); // the runtime condition
            std::vector<std::uint32_t> elems;
            for (unsigned l = 0; l < density; ++l)
                elems.push_back(w * 32 + (l * 7 + tb) % 32);
            std::sort(elems.begin(), elems.end());
            elems.erase(std::unique(elems.begin(), elems.end()),
                        elems.end());
            b.accessTile(w, t, elems, false);
            b.compute(w, 1, 1);
            b.accessTile(w, t, elems, true);
        }
        k.blocks.push_back(b.build());
    }
    wl.phases.push_back(Phase::gpu(std::move(k)));
    return wl;
}

unsigned
sparsityElements(workloads::Scale scale)
{
    switch (scale) {
      case workloads::Scale::Full:
        return 8192;
      case workloads::Scale::Quick:
        return 2048;
      case workloads::Scale::Smoke:
        return 1024;
    }
    return 8192;
}

} // namespace

report::JsonValue
runAblationSparsitySweep(const BenchContext &ctx)
{
    report::JsonValue doc =
        benchDoc(ctx, "ablation_sparsity_sweep",
                 findBench("ablation_sparsity_sweep")->title);
    const unsigned n = sparsityElements(ctx.scale);
    doc["elements"] = n;

    std::vector<RunSpec> specs;
    std::vector<unsigned> knob;
    for (unsigned density : {1u, 2u, 4u, 8u, 16u, 32u}) {
        for (MemOrg org : {MemOrg::Stash, MemOrg::ScratchGD}) {
            RunSpec spec;
            spec.workload = "sparsity";
            spec.org = org;
            spec.scale = ctx.scale;
            spec.make = [org, density,
                         n](const workloads::WorkloadParams &) {
                return makeSparse(org, density, n);
            };
            spec.labelOverride = std::string("density-") +
                                 std::to_string(density) + "/" +
                                 memOrgName(org);
            specs.push_back(std::move(spec));
            knob.push_back(density);
        }
    }

    std::vector<RunRecord> records =
        sweepSpecs(ctx, "ablation_sparsity_sweep", std::move(specs));
    report::JsonValue runs = report::JsonValue::array();
    for (std::size_t i = 0; i < records.size(); ++i) {
        report::JsonValue run = runToJson(records[i], ctx.components);
        report::JsonValue params = report::JsonValue::object();
        params["density"] = knob[i];
        run["params"] = std::move(params);
        runs.push(std::move(run));
    }
    doc["runs"] = std::move(runs);

    report::JsonValue paper = report::JsonValue::object();
    report::JsonValue notes = report::JsonValue::array();
    notes.push("paper reference at 1/32: stash has ~48% lower "
               "traffic and energy than DMA");
    paper["notes"] = std::move(notes);
    doc["paper"] = std::move(paper);
    return doc;
}

} // namespace stashbench
