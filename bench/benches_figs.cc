/**
 * @file
 * The table/figure reproduction benches: Table 3 (per-access
 * energy), Figure 5 (microbenchmarks), and Figure 6 (applications).
 * Each returns a stashsim-bench-v1 document; the paper's reference
 * numbers ride along in the document's "paper" object so the
 * markdown renderer has a single source.
 */

#include "benches.hh"

#include "energy/energy_model.hh"
#include "workloads/workload_factory.hh"

namespace stashbench
{

namespace
{

/** Names of every registered workload of @p kind, factory order. */
std::vector<std::string>
workloadNamesOf(workloads::WorkloadInfo::Kind kind)
{
    std::vector<std::string> names;
    for (const auto &info : workloads::WorkloadFactory::instance().list()) {
        if (info.kind == kind)
            names.push_back(info.name);
    }
    return names;
}

report::JsonValue
stringArray(const std::vector<std::string> &items)
{
    report::JsonValue arr = report::JsonValue::array();
    for (const std::string &s : items)
        arr.push(s);
    return arr;
}

report::JsonValue
orgArray(const std::vector<MemOrg> &orgs)
{
    report::JsonValue arr = report::JsonValue::array();
    for (MemOrg org : orgs)
        arr.push(memOrgName(org));
    return arr;
}

/** workload x config cross product at the context's scale. */
std::vector<RunSpec>
crossSpecs(const BenchContext &ctx,
           const std::vector<std::string> &names,
           const std::vector<MemOrg> &orgs)
{
    std::vector<RunSpec> specs;
    for (const std::string &name : names) {
        for (MemOrg org : orgs) {
            RunSpec spec;
            spec.workload = name;
            spec.org = org;
            spec.scale = ctx.scale;
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

} // namespace

report::JsonValue
runTable3(const BenchContext &ctx)
{
    const EnergyParams p;
    report::JsonValue doc = benchDoc(
        ctx, "table3", findBench("table3")->title);
    doc["runs"] = report::JsonValue::array();

    report::JsonValue values = report::JsonValue::object();
    values["scratchpadAccess"] = p.scratchpadAccess;
    values["stashHit"] = p.stashHit;
    values["stashMiss"] = p.stashMiss;
    values["l1Hit"] = p.l1Hit;
    values["l1Miss"] = p.l1Miss;
    values["tlbAccess"] = p.tlbAccess;
    values["gpuCoreInstr"] = p.gpuCoreInstr;
    values["l2Access"] = p.l2Access;
    values["nocFlitHop"] = p.nocFlitHop;
    doc["values"] = std::move(values);

    report::JsonValue ratios = report::JsonValue::object();
    ratios["scratchpadOverL1Hit"] =
        p.scratchpadAccess / (p.l1Hit + p.tlbAccess);
    ratios["stashHitOverScratchpad"] = p.stashHit / p.scratchpadAccess;
    ratios["stashMissOverL1Miss"] =
        p.stashMiss / (p.l1Miss + p.tlbAccess);
    doc["ratios"] = std::move(ratios);

    report::JsonValue paper = report::JsonValue::object();
    paper["scratchpadOverL1Hit"] = 0.29;
    paper["stashMissOverL1Miss"] = 0.41;
    doc["paper"] = std::move(paper);
    return doc;
}

report::JsonValue
runFig5(const BenchContext &ctx)
{
    const std::vector<MemOrg> configs = {MemOrg::Scratch,
                                         MemOrg::ScratchGD,
                                         MemOrg::Cache, MemOrg::Stash};
    const std::vector<std::string> names = workloadNamesOf(
        workloads::WorkloadInfo::Kind::Microbenchmark);

    report::JsonValue doc =
        benchDoc(ctx, "fig5", findBench("fig5")->title);
    doc["baseline"] = memOrgName(MemOrg::Scratch);
    doc["configs"] = orgArray(configs);
    doc["workloads"] = stringArray(names);

    std::vector<RunRecord> records =
        sweepSpecs(ctx, "fig5", crossSpecs(ctx, names, configs));
    report::JsonValue runs = report::JsonValue::array();
    for (const RunRecord &rec : records)
        runs.push(runToJson(rec, ctx.components));
    doc["runs"] = std::move(runs);

    // Paper reference values (Section 6.2 / Figure 5), normalized
    // Stash over Scratch per workload plus the cross-config averages.
    report::JsonValue paper = report::JsonValue::object();
    report::JsonValue time = report::JsonValue::object();
    time["Implicit"] = 0.85;
    time["Pollution"] = 0.69;
    time["On-demand"] = 0.74;
    time["Reuse"] = 0.65;
    time["average"] = 0.87;
    paper["timeStash"] = std::move(time);
    report::JsonValue energy = report::JsonValue::object();
    energy["Implicit"] = 0.66;
    energy["Pollution"] = 0.58;
    energy["On-demand"] = 0.39;
    energy["Reuse"] = 0.26;
    energy["average"] = 0.65;
    paper["energyStash"] = std::move(energy);
    report::JsonValue notes = report::JsonValue::array();
    notes.push("paper avg time: Stash = 0.87 vs Scratch, 0.73 vs "
               "Cache, 0.86 vs ScratchGD");
    notes.push("paper avg energy: Stash = 0.65 vs Scratch, 0.47 vs "
               "Cache, 0.68 vs ScratchGD");
    notes.push("paper: Implicit Stash executes ~40% fewer "
               "instructions than Scratch");
    notes.push("paper: On-demand Stash has ~48% less traffic than "
               "DMA; Reuse ~83% less");
    paper["notes"] = std::move(notes);
    doc["paper"] = std::move(paper);
    return doc;
}

report::JsonValue
runFig6(const BenchContext &ctx)
{
    const std::vector<MemOrg> configs = {
        MemOrg::Scratch, MemOrg::ScratchG, MemOrg::Cache,
        MemOrg::Stash, MemOrg::StashG};
    const std::vector<std::string> names = workloadNamesOf(
        workloads::WorkloadInfo::Kind::Application);

    report::JsonValue doc =
        benchDoc(ctx, "fig6", findBench("fig6")->title);
    doc["baseline"] = memOrgName(MemOrg::Scratch);
    doc["configs"] = orgArray(configs);
    doc["workloads"] = stringArray(names);

    std::vector<RunRecord> records =
        sweepSpecs(ctx, "fig6", crossSpecs(ctx, names, configs));
    report::JsonValue runs = report::JsonValue::array();
    for (const RunRecord &rec : records)
        runs.push(runToJson(rec, ctx.components));
    doc["runs"] = std::move(runs);

    // Paper reference averages (Section 6.3 / Figure 6).
    report::JsonValue paper = report::JsonValue::object();
    report::JsonValue time = report::JsonValue::object();
    time["ScratchG"] = 1.07;
    time["Cache"] = 1.02;
    time["StashG"] = 0.90;
    paper["timeAvg"] = std::move(time);
    report::JsonValue energy = report::JsonValue::object();
    energy["ScratchG"] = 1.12;
    energy["Cache"] = 1.18;
    energy["StashG"] = 0.84;
    paper["energyAvg"] = std::move(energy);
    report::JsonValue notes = report::JsonValue::array();
    notes.push("paper: StashG reduces execution time by 10% on "
               "average (max 22%) and energy by 16% (max 30%) vs "
               "Scratch; vs Cache, 12% time (max 31%) and 32% "
               "energy (max 51%)");
    notes.push("paper: ScratchG is ~7%/12% worse than Scratch in "
               "time/energy");
    paper["notes"] = std::move(notes);
    doc["paper"] = std::move(paper);
    return doc;
}

} // namespace stashbench
