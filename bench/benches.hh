/**
 * @file
 * The bench library behind the stashbench CLI.
 *
 * Each paper table/figure/ablation is one entry in benchList(): a
 * function that sweeps its run grid (through the SweepDriver, so
 * --jobs parallelizes it) and returns a stashsim-bench-v1 JSON
 * document.  The CLI writes each document to BENCH_<name>.json;
 * renderExperimentsMd() turns a directory of those artifacts back
 * into EXPERIMENTS.md.
 *
 * Document schema (stashsim-bench-v1):
 *   schema   "stashsim-bench-v1"
 *   bench    registry name ("fig5")
 *   title    human title
 *   scale    "full" | "quick" | "smoke"
 *   runs     array of run objects:
 *              workload, config (MemOrg name), label, validated,
 *              errors[], gpuCycles, instructions,
 *              energy{gpuCore,l1,local,l2,noc,total},
 *              flitHops{read,write,writeback,total},
 *              optional params{...} (ablation knobs),
 *              optional metrics{...} (bench-specific counters),
 *              optional stats{...} (full flattened map, --components)
 *   plus bench-specific top-level fields (configs, workloads,
 *   baseline, paper, values, ratios).
 */

#ifndef STASHSIM_BENCH_BENCHES_HH
#define STASHSIM_BENCH_BENCHES_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "driver/run.hh"
#include "driver/sweep.hh"
#include "report/json.hh"
#include "workloads/synthetic/trace_replay.hh"

namespace stashbench
{

using namespace stashsim;

/**
 * Host-throughput rollup (SimPerf) across every sweep the CLI ran.
 *
 * Only this collector's artifact (BENCH_simperf.json) carries host
 * wall-clock numbers; the per-bench documents keep nothing but
 * deterministic counters so they stay byte-reproducible.
 */
struct SimperfCollector
{
    struct BenchTotals
    {
        std::string bench;
        std::uint64_t runs = 0;
        std::uint64_t events = 0;
        std::uint64_t simTicks = 0;
        double hostSeconds = 0;
        /** Queue-shape rollup: peak is a max, the rest are sums. */
        QueueShape shape;
        /** Engine drain-loop rollup (sums; lanes dropped). */
        std::uint64_t execNs = 0;
        std::uint64_t barrierWaitNs = 0;
        std::uint64_t flushNs = 0;
        std::uint64_t quanta = 0;
    };

    std::vector<BenchTotals> benches; //!< first-use order

    /** Engine mode of the collected runs (CLI --shards setting);
     *  recorded in the artifact so per-mode events/sec compare. */
    unsigned shards = 1;

    /**
     * Recovery counters accumulated across every sweep (cached,
     * resumed, reclaimed leases, quarantines, ...).  They ride here —
     * NOT in the per-bench documents — because BENCH_<name>.json must
     * stay byte-identical between fresh, resumed, and farmed sweeps.
     */
    SweepCounters recovery;

    /** Folds a sweep's per-run SimPerf summaries into @p bench. */
    void add(const char *bench, const std::vector<RunRecord> &records);

    /**
     * The stashsim-simperf-v1 document: one entry per bench plus
     * whole-suite totals; @p wallSeconds spans the CLI's bench loop.
     */
    report::JsonValue toJson(const char *scale,
                             double wallSeconds) const;
};

/** Options every bench receives from the CLI. */
struct BenchContext
{
    workloads::Scale scale = workloads::Scale::Full;
    /** Sweep worker threads; 0 = one per hardware thread. */
    unsigned jobs = 0;
    /** Intra-run shard threads per run; 1 = serial, 0 = auto. */
    unsigned shards = 1;
    /**
     * Memory backend for every run that does not pick its own
     * (stashbench --backend); the memback ablation overrides it per
     * run to sweep all three.
     */
    MemBackendKind backend = MemBackendKind::Fixed;
    /** Sweep progress stream; nullptr = silent. */
    std::ostream *progress = nullptr;
    /** Artifact directory (CLI --out); benches that keep implicit
     *  state (synthspace's sample farm) root it here when no
     *  explicit stateDir was given. */
    std::string outDir = ".";
    /** When nonempty, write per-run Chrome traces into this dir. */
    std::string traceDir;
    /** Include the full flattened stats map in every run object. */
    bool components = false;
    /** When set, sweepSpecs() reports every sweep's throughput here. */
    SimperfCollector *simperf = nullptr;
    /** Per-run checkpoint cadence in ticks (0 = none). */
    std::uint64_t checkpointEvery = 0;
    /**
     * Checkpoint/resume state root; sweepSpecs() keeps each bench's
     * state in <stateDir>/<bench> so same-named specs of different
     * benches never collide.
     */
    std::string stateDir;
    /** Resume: reuse completed results, restart from checkpoints. */
    bool resume = false;
    /** Farm worker id for lease files; empty = "w<pid>". */
    std::string workerId;
    /** Lease heartbeat TTL in ms (SweepOptions::leaseTtlMs). */
    std::uint64_t leaseTtlMs = 30'000;
    /** Attempts per spec before FAILED_* quarantine. */
    unsigned maxAttempts = 3;
    /** Cooperative stop flag (SIGINT/SIGTERM); may be nullptr. */
    const std::atomic<bool> *stop = nullptr;
};

/** One registered bench. */
struct BenchInfo
{
    const char *name;
    const char *title;
    /** Input scales the bench reacts to ("-" = scale-independent). */
    const char *scales;
    /** One-line description for --list. */
    const char *desc;
    report::JsonValue (*run)(const BenchContext &);
    /**
     * False = explicit-only: the bench runs when named on the command
     * line but is excluded from the all-bench default selection (the
     * scaling bench: its artifact records host wall-clock, so it must
     * not feed the deterministic default artifact set).
     */
    bool defaultRun = true;
};

/** Every bench, in EXPERIMENTS.md order. */
const std::vector<BenchInfo> &benchList();

/**
 * The `--trace-replay FILE` frontend (not in benchList(): it needs a
 * trace file, not just a name): sweeps @p trace over ScratchGD /
 * Cache / Stash and returns the stashsim-bench-v1 document for
 * BENCH_replay.json.  @p source is recorded in the document's
 * "trace" object.
 */
report::JsonValue runReplayBench(const BenchContext &ctx,
                                 const workloads::TraceData &trace,
                                 const std::string &source);

/**
 * Machine-readable bench inventory (stashbench --list --json):
 *   schema    "stashsim-benchlist-v1"
 *   benches   [{name, title, description, scales[]}]
 *   workloads [{name, kind, description}] (runnable inventory)
 *   backends  [{name, description}]   (--backend choices)
 * where scales is empty for scale-independent benches.
 */
report::JsonValue benchInventoryJson();

/** Lookup by name; nullptr when unknown. */
const BenchInfo *findBench(const std::string &name);

/** True when every run in @p doc passed validation. */
bool allRunsValidated(const report::JsonValue &doc);

/**
 * Renders EXPERIMENTS.md content from the BENCH_*.json artifacts in
 * @p dir.  Missing artifacts fail with a message in @p err.
 */
bool renderExperimentsMd(const std::string &dir, std::ostream &os,
                         std::string &err);

// ---- helpers shared by the bench implementations ----------------

/** New stashsim-bench-v1 document shell. */
report::JsonValue benchDoc(const BenchContext &ctx, const char *name,
                           const char *title);

/** The standard run object for one sweep record. */
report::JsonValue runToJson(const RunRecord &rec, bool components);

/**
 * Runs @p specs through the SweepDriver with the context's jobs and
 * progress settings; when the context has a trace dir, each spec is
 * instrumented with a ChromeTraceSink whose output lands in
 * TRACE_<bench>_<label>.json.
 */
std::vector<RunRecord> sweepSpecs(const BenchContext &ctx,
                                  const char *bench,
                                  std::vector<RunSpec> specs);

} // namespace stashbench

#endif // STASHSIM_BENCH_BENCHES_HH
