/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot paths
 * (simulation throughput, not simulated performance): event-queue
 * scheduling, mesh transport, tile translation arithmetic, and the
 * L1/stash access paths.
 */

#include <benchmark/benchmark.h>

#include "core/stash.hh"
#include "mem/cache.hh"
#include "mem/llc.hh"
#include "mem/main_memory.hh"
#include "noc/mesh.hh"

namespace
{

using namespace stashsim;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    int sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.scheduleIn(i, [&sink]() { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_MeshSend(benchmark::State &state)
{
    EventQueue eq;
    Mesh mesh(eq, MeshParams{});
    int sink = 0;
    for (auto _ : state) {
        mesh.send(0, 15, 72, MsgClass::Read, [&sink]() { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_MeshSend);

void
BM_TileTranslation(benchmark::State &state)
{
    TileSpec t;
    t.globalBase = 0x1000'0000;
    t.fieldSize = 4;
    t.objectSize = 64;
    t.rowSize = 256;
    t.strideSize = 64 * 1024;
    t.numStrides = 8;
    std::uint32_t off = 0;
    for (auto _ : state) {
        const Addr ga = t.globalAddrOf(off % t.mappedBytes());
        std::uint32_t back;
        benchmark::DoNotOptimize(t.reverse(ga, &back));
        off += 4;
    }
}
BENCHMARK(BM_TileTranslation);

struct MiniSystem
{
    EventQueue eq;
    MainMemory mem;
    PageTable pt;
    Mesh mesh{eq, MeshParams{}};
    Fabric fabric{mesh};
    std::vector<std::unique_ptr<MemBackend>> backends;
    std::vector<std::unique_ptr<LlcBank>> llc;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<L1Cache> cache;
    std::unique_ptr<Stash> stash;

    MiniSystem()
    {
        for (NodeId n = 0; n < 16; ++n) {
            backends.push_back(makeMemBackend(MemBackendConfig{}, eq,
                                              mem, gpuClockPeriod));
            llc.push_back(std::make_unique<LlcBank>(
                eq, fabric, *backends.back(), n, LlcBank::Params{}));
            fabric.registerObject(n, Unit::Llc, llc.back().get());
        }
        tlb = std::make_unique<Tlb>(pt, 64);
        cache = std::make_unique<L1Cache>(eq, fabric, *tlb, 0,
                                          NodeId(0),
                                          L1Cache::Params{});
        fabric.registerObject(NodeId(0), Unit::L1, cache.get());
        fabric.registerCore(0, NodeId(0));
        stash = std::make_unique<Stash>(eq, fabric, pt, 1, NodeId(1),
                                        Stash::Params{});
        fabric.registerObject(NodeId(1), Unit::Stash, stash.get());
        fabric.registerCore(1, NodeId(1));
    }
};

void
BM_L1HitPath(benchmark::State &state)
{
    MiniSystem s;
    // Warm one line.
    s.cache->access(0x1000, fullLineMask, false, nullptr,
                    [](const LineData &) {});
    s.eq.run();
    for (auto _ : state) {
        s.cache->access(0x1000, wordBit(3), false, nullptr,
                        [](const LineData &) {});
        s.eq.run();
    }
}
BENCHMARK(BM_L1HitPath);

void
BM_StashHitPath(benchmark::State &state)
{
    MiniSystem s;
    TileSpec t;
    t.globalBase = 0x2000;
    t.fieldSize = 4;
    t.objectSize = 4;
    t.rowSize = 256;
    t.numStrides = 1;
    auto r = s.stash->addMap(0, t);
    LineData d;
    s.stash->access(0, fullLineMask, true, &d, r.idx,
                    [](const LineData &) {});
    s.eq.run();
    for (auto _ : state) {
        s.stash->access(0, wordBit(3), false, nullptr, r.idx,
                        [](const LineData &) {});
        s.eq.run();
    }
}
BENCHMARK(BM_StashHitPath);

void
BM_StashMissFillPath(benchmark::State &state)
{
    MiniSystem s;
    TileSpec t;
    t.globalBase = 0x100000;
    t.fieldSize = 4;
    t.objectSize = 64;
    t.rowSize = 4096;
    t.numStrides = 1;
    auto r = s.stash->addMap(0, t);
    std::uint32_t i = 0;
    for (auto _ : state) {
        const LocalAddr a = LocalAddr((i % 4096) * 4) &
                            ~LocalAddr(63);
        s.stash->access(a, wordBit(i % 16), false, nullptr, r.idx,
                        [](const LineData &) {});
        s.eq.run();
        ++i;
        if (i % 4096 == 0)
            s.stash->endKernel();
    }
}
BENCHMARK(BM_StashMissFillPath);

} // namespace

BENCHMARK_MAIN();
