/**
 * @file
 * Shared helpers for the table/figure reproduction benches: run a
 * workload under a configuration, normalize against the Scratch
 * baseline, and print paper-style rows with the paper's reported
 * values alongside for comparison (EXPERIMENTS.md is generated from
 * these outputs).
 */

#ifndef STASHSIM_BENCH_BENCH_UTIL_HH
#define STASHSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "driver/system.hh"
#include "workloads/apps.hh"
#include "workloads/microbench.hh"

namespace benchutil
{

using namespace stashsim;

/** True when the bench was invoked with --quick (scaled inputs). */
inline bool
quickMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            return true;
    }
    return false;
}

/** Runs one microbenchmark under @p org at the given scale. */
inline RunResult
runMicrobenchmark(const std::string &name, MemOrg org, bool quick,
                  const SystemConfig *cfg_override = nullptr,
                  const EnergyParams &ep = EnergyParams{})
{
    SystemConfig cfg = cfg_override
                           ? *cfg_override
                           : SystemConfig::microbenchmarkDefault();
    cfg.memOrg = org;
    workloads::MicrobenchConfig mb;
    mb.org = org;
    mb.cpuCores = cfg.numCpuCores;
    if (quick) {
        mb.implicitElements /= 4;
        mb.pollutionElementsA /= 4;
        mb.onDemandElements /= 4;
        mb.reuseKernels = 4;
    }
    System sys(cfg, ep);
    RunResult r =
        sys.run(workloads::makeMicrobenchmark(name, mb));
    if (!r.validated) {
        std::fprintf(stderr, "WARNING: %s/%s failed validation\n",
                     name.c_str(), memOrgName(org));
    }
    return r;
}

/** Runs one application under @p org at the given scale. */
inline RunResult
runApplication(const std::string &name, MemOrg org, bool quick,
               const SystemConfig *cfg_override = nullptr)
{
    SystemConfig cfg = cfg_override
                           ? *cfg_override
                           : SystemConfig::applicationDefault();
    cfg.memOrg = org;
    workloads::AppConfig ac;
    ac.org = org;
    ac.cpuCores = cfg.numCpuCores;
    if (quick) {
        ac.ludN = 128;
        ac.nwN = 256;
        ac.pfCols = 256 * 64;
        ac.stencilIters = 2;
    }
    System sys(cfg);
    RunResult r = sys.run(workloads::makeApplication(name, ac));
    if (!r.validated) {
        std::fprintf(stderr, "WARNING: %s/%s failed validation\n",
                     name.c_str(), memOrgName(org));
    }
    return r;
}

/** Prints a normalized row: name then value/baseline per config. */
inline void
printNormalizedRow(const std::string &label,
                   const std::vector<double> &values, double baseline)
{
    std::printf("%-11s", label.c_str());
    for (double v : values)
        std::printf(" %8.2f", baseline > 0 ? v / baseline : 0.0);
    std::printf("\n");
}

/** Prints the standard bench header with the simulated system. */
inline void
printSystemBanner(const char *what, const SystemConfig &cfg,
                  bool quick)
{
    std::printf("================================================="
                "=====================\n");
    std::printf("%s\n", what);
    std::printf("system (Table 2): %ux%u mesh, %u GPU CU%s + %u CPU "
                "core%s, %u KB L1, %u KB %s, %u MB L2, DeNovo\n",
                cfg.meshWidth, cfg.meshHeight, cfg.numGpuCus,
                cfg.numGpuCus == 1 ? "" : "s", cfg.numCpuCores,
                cfg.numCpuCores == 1 ? "" : "s", cfg.l1Bytes / 1024,
                cfg.localBytes / 1024,
                usesStash(cfg.memOrg) ? "stash" : "scratchpad/stash",
                cfg.llcBanks * cfg.llcBankBytes / (1024 * 1024));
    if (quick)
        std::printf("mode: --quick (scaled-down inputs)\n");
    std::printf("================================================="
                "=====================\n\n");
}

} // namespace benchutil

#endif // STASHSIM_BENCH_BENCH_UTIL_HH
