/**
 * @file
 * The memory-backend ablation: every application under each of the
 * three backing-store models (src/mem/backend) in the Scratch,
 * Cache, and Stash organizations.  The interesting question is
 * whether the paper's stash-vs-scratch win survives a memory system
 * whose misses are not a flat 168 cycles — STT-MRAM punishes the
 * extra writebacks cache-like organizations generate, while an SCM
 * DRAM-cache rewards locality in the miss stream — so the document
 * carries the per-backend stash/scratch cycle ratios directly.
 */

#include "benches.hh"

#include "mem/backend/mem_backend.hh"

namespace stashbench
{

namespace
{

report::JsonValue
membackMetrics(const RunRecord &rec)
{
    const MemBackendStats &mb = rec.result.stats.memback;
    report::JsonValue m = report::JsonValue::object();
    m["reads"] = double(mb.reads);
    m["writes"] = double(mb.writes);
    m["readStallTicks"] = double(mb.readStallTicks);
    m["writePauses"] = double(mb.writePauses);
    m["dcacheHits"] = double(mb.dcacheHits);
    m["dcacheMisses"] = double(mb.dcacheMisses);
    m["scmReads"] = double(mb.scmReads);
    m["scmWrites"] = double(mb.scmWrites);
    return m;
}

} // namespace

report::JsonValue
runMemBackend(const BenchContext &ctx)
{
    const std::vector<MemOrg> configs = {MemOrg::Scratch,
                                         MemOrg::Cache, MemOrg::Stash};
    std::vector<std::string> names;
    for (const auto &info :
         workloads::WorkloadFactory::instance().list()) {
        if (info.kind == workloads::WorkloadInfo::Kind::Application)
            names.push_back(info.name);
    }

    report::JsonValue doc =
        benchDoc(ctx, "memback", findBench("memback")->title);
    doc["baseline"] = memOrgName(MemOrg::Scratch);
    report::JsonValue orgArr = report::JsonValue::array();
    for (MemOrg org : configs)
        orgArr.push(memOrgName(org));
    doc["configs"] = std::move(orgArr);
    report::JsonValue nameArr = report::JsonValue::array();
    for (const std::string &n : names)
        nameArr.push(n);
    doc["workloads"] = std::move(nameArr);
    report::JsonValue backArr = report::JsonValue::array();
    for (const MemBackendInfo &b : memBackendList())
        backArr.push(b.name);
    doc["backends"] = std::move(backArr);

    std::vector<RunSpec> specs;
    std::vector<MemBackendKind> knob;
    for (const std::string &name : names) {
        for (const MemBackendInfo &b : memBackendList()) {
            for (MemOrg org : configs) {
                RunSpec spec;
                spec.workload = name;
                spec.org = org;
                spec.scale = ctx.scale;
                spec.backend = b.kind;
                // The backend rides in the label: sweep-state caching
                // (RESULT_<label>) and trace files must distinguish
                // the same workload/org pair across backends.
                spec.labelOverride = name + "/" +
                                     std::string(b.name) + "/" +
                                     memOrgName(org);
                specs.push_back(std::move(spec));
                knob.push_back(b.kind);
            }
        }
    }

    std::vector<RunRecord> records =
        sweepSpecs(ctx, "memback", std::move(specs));
    report::JsonValue runs = report::JsonValue::array();
    for (std::size_t i = 0; i < records.size(); ++i) {
        report::JsonValue run = runToJson(records[i], ctx.components);
        report::JsonValue params = report::JsonValue::object();
        params["backend"] = memBackendName(knob[i]);
        run["params"] = std::move(params);
        run["metrics"] = membackMetrics(records[i]);
        runs.push(std::move(run));
    }
    doc["runs"] = std::move(runs);

    // The headline table: per backend, Stash cycles over Scratch
    // cycles per workload plus the geometric-mean-free arithmetic
    // average — the paper's Figure 6 comparison re-asked under each
    // memory model.
    report::JsonValue ratios = report::JsonValue::object();
    for (const MemBackendInfo &b : memBackendList()) {
        report::JsonValue per = report::JsonValue::object();
        double sum = 0;
        std::size_t n = 0;
        for (const std::string &name : names) {
            double scratch = 0, stash = 0;
            for (std::size_t i = 0; i < records.size(); ++i) {
                const RunSpec &s = records[i].spec;
                if (s.workload != name || knob[i] != b.kind)
                    continue;
                if (s.org == MemOrg::Scratch)
                    scratch = double(records[i].result.gpuCycles);
                else if (s.org == MemOrg::Stash)
                    stash = double(records[i].result.gpuCycles);
            }
            if (scratch > 0) {
                per[name] = stash / scratch;
                sum += stash / scratch;
                ++n;
            }
        }
        if (n > 0)
            per["average"] = sum / double(n);
        ratios[b.name] = std::move(per);
    }
    doc["stashOverScratchCycles"] = std::move(ratios);
    return doc;
}

} // namespace stashbench
