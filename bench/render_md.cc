/**
 * @file
 * EXPERIMENTS.md renderer: reads the BENCH_*.json artifacts back and
 * regenerates the paper-vs-measured tables, so the document is a
 * projection of the emitted data rather than copied stdout.  The
 * qualitative commentary (deviations, protocol findings) is static
 * prose describing the full-scale runs.
 */

#include "benches.hh"

#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace stashbench
{

namespace
{

using report::JsonValue;

bool
loadDoc(const std::string &dir, const std::string &bench,
        JsonValue &doc, std::string &err)
{
    const std::string path = dir + "/BENCH_" + bench + ".json";
    std::ifstream is(path);
    if (!is) {
        err = "cannot open " + path +
              " (run stashbench to generate it)";
        return false;
    }
    std::stringstream ss;
    ss << is.rdbuf();
    std::string parse_err;
    if (!JsonValue::parse(ss.str(), doc, parse_err)) {
        err = path + ": " + parse_err;
        return false;
    }
    const JsonValue *schema = doc.find("schema");
    if (!schema || schema->asString() != "stashsim-bench-v1") {
        err = path + ": not a stashsim-bench-v1 document";
        return false;
    }
    return true;
}

/** runs indexed by (workload, config). */
using RunIndex =
    std::map<std::string, std::map<std::string, const JsonValue *>>;

RunIndex
indexRuns(const JsonValue &doc)
{
    RunIndex idx;
    const JsonValue *runs = doc.find("runs");
    if (!runs)
        return idx;
    for (std::size_t i = 0; i < runs->size(); ++i) {
        const JsonValue &run = runs->at(i);
        const JsonValue *wl = run.find("workload");
        const JsonValue *cfg = run.find("config");
        if (wl && cfg)
            idx[wl->asString()][cfg->asString()] = &run;
    }
    return idx;
}

double
metric(const JsonValue &run, const char *what)
{
    if (std::string(what) == "gpuCycles")
        return run.find("gpuCycles")->asNumber();
    if (std::string(what) == "instructions")
        return run.find("instructions")->asNumber();
    if (std::string(what) == "energy")
        return run.find("energy")->find("total")->asNumber();
    return run.find("flitHops")->find("total")->asNumber();
}

std::string
fmt(double v, const char *spec = "%.2f")
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), spec, v);
    return buf;
}

std::vector<std::string>
stringList(const JsonValue &doc, const char *key)
{
    std::vector<std::string> out;
    const JsonValue *arr = doc.find(key);
    if (!arr)
        return out;
    for (std::size_t i = 0; i < arr->size(); ++i)
        out.push_back(arr->at(i).asString());
    return out;
}

double
paperNumber(const JsonValue &doc, const char *group,
            const std::string &key, double fallback = -1)
{
    const JsonValue *p = doc.find("paper");
    if (!p)
        return fallback;
    const JsonValue *g = p->find(group);
    if (!g)
        return fallback;
    const JsonValue *v = g->find(key);
    return v ? v->asNumber() : fallback;
}

/**
 * One normalized panel: workloads x non-baseline configs, each cell
 * metric(run)/metric(baseline run), plus a per-config average row.
 * @p paperGroup (may be null) adds a trailing paper column from the
 * document's reference numbers.
 */
void
renderNormalizedPanel(std::ostream &os, const JsonValue &doc,
                      const RunIndex &idx, const char *what,
                      const char *paperGroup, const char *paperLabel)
{
    const std::string baseline = doc.find("baseline")->asString();
    const std::vector<std::string> workloads =
        stringList(doc, "workloads");
    std::vector<std::string> configs;
    for (const std::string &c : stringList(doc, "configs")) {
        if (c != baseline)
            configs.push_back(c);
    }

    os << "| |";
    for (const std::string &c : configs)
        os << " " << c << " |";
    if (paperGroup)
        os << " " << paperLabel << " |";
    os << "\n|---|";
    for (std::size_t i = 0; i < configs.size(); ++i)
        os << "---|";
    if (paperGroup)
        os << "---|";
    os << "\n";

    std::map<std::string, double> sums;
    for (const std::string &wl : workloads) {
        const auto &per = idx.at(wl);
        const double base = metric(*per.at(baseline), what);
        os << "| " << wl << " |";
        for (const std::string &c : configs) {
            const double v = metric(*per.at(c), what) / base;
            sums[c] += v;
            os << " " << fmt(v) << " |";
        }
        if (paperGroup) {
            const double pv = paperNumber(doc, paperGroup, wl);
            os << " " << (pv >= 0 ? fmt(pv) : std::string("—"))
               << " |";
        }
        os << "\n";
    }
    os << "| **average** |";
    for (const std::string &c : configs)
        os << " **" << fmt(sums[c] / double(workloads.size()))
           << "** |";
    if (paperGroup) {
        const double pv = paperNumber(doc, paperGroup, "average");
        os << " " << (pv >= 0 ? fmt(pv) : std::string("—")) << " |";
    }
    os << "\n";
}

/** fig6-style panel: paper averages as a final row, not a column. */
void
renderPanelWithPaperAvgRow(std::ostream &os, const JsonValue &doc,
                           const RunIndex &idx, const char *what,
                           const char *paperGroup)
{
    renderNormalizedPanel(os, doc, idx, what, nullptr, nullptr);
    const std::string baseline = doc.find("baseline")->asString();
    os << "| paper avg |";
    for (const std::string &c : stringList(doc, "configs")) {
        if (c == baseline)
            continue;
        const double pv = paperNumber(doc, paperGroup, c);
        os << " " << (pv >= 0 ? fmt(pv) : std::string("—")) << " |";
    }
    os << "\n";
}

void
renderTable3(std::ostream &os, const JsonValue &doc)
{
    const JsonValue &v = *doc.find("values");
    const JsonValue &r = *doc.find("ratios");
    auto pj = [&](const char *key) {
        return fmt(v.find(key)->asNumber(), "%.1f");
    };
    os << "## Table 3 — per-access energy "
          "(`stashbench table3`)\n\n"
       << "| Unit | paper hit / miss | measured (model constants) "
          "|\n|---|---|---|\n"
       << "| Scratchpad | 55.3 pJ / – | " << pj("scratchpadAccess")
       << " pJ / – |\n"
       << "| Stash | 55.4 pJ / 86.8 pJ | " << pj("stashHit")
       << " pJ / " << pj("stashMiss") << " pJ |\n"
       << "| L1 cache | 177 pJ / 197 pJ | " << pj("l1Hit") << " pJ / "
       << pj("l1Miss") << " pJ |\n"
       << "| TLB access | 14.1 pJ | " << pj("tlbAccess") << " pJ |\n\n"
       << "The local-structure energies are the paper's own values, "
          "used directly\nby the energy model; the derived ratios "
          "the paper highlights\n(scratchpad = "
       << fmt(100 * r.find("scratchpadOverL1Hit")->asNumber(), "%.0f")
       << "% of an L1 hit; stash miss = "
       << fmt(100 * r.find("stashMissOverL1Miss")->asNumber(), "%.0f")
       << "% of an L1 miss; stash\nhit ≈ scratchpad) are computed "
          "from the emitted constants and match the\npaper's 29% / "
          "41%. Three constants the paper does not give numerically "
          "(GPU\ncore+ per instruction and per CU-cycle, L2 per "
          "access, NoC per flit-hop)\nare calibrated **once, "
          "globally** — identical across all configurations —\nso "
          "every relative result below is driven purely by counted "
          "events.\n\n";
}

void
renderFig5(std::ostream &os, const JsonValue &doc)
{
    const RunIndex idx = indexRuns(doc);
    os << "## Figure 5 — microbenchmarks (`stashbench fig5`)\n\n"
          "Configurations: Scratch / ScratchGD (scratchpad + "
          "D²MA-style DMA) /\nCache / Stash; 1 GPU CU + 15 CPU cores "
          "(Table 2). All values normalized to\nScratch.\n\n";

    os << "### 5(a) execution time (normalized to Scratch)\n\n";
    renderNormalizedPanel(os, doc, idx, "gpuCycles", "timeStash",
                          "paper (Stash)");
    os << "\nPaper averages: stash −13% vs Scratch, −27% vs Cache, "
          "−14% vs\nScratchGD. Measured: stash wins everywhere with "
          "the same per-benchmark\nmechanisms, but with larger "
          "margins for On-demand and Reuse — see\n*Deviations* "
          "below.\n\n";

    os << "### 5(b) dynamic energy (normalized to Scratch)\n\n";
    renderNormalizedPanel(os, doc, idx, "energy", "energyStash",
                          "paper (Stash)");
    os << "\nThe five-way breakdown (GPU core+ / L1 / scratch-stash "
          "/ L2 / N/W) is in\nevery run's `energy` object in "
          "`BENCH_fig5.json`.\n\n";

    os << "### 5(c) GPU instruction count (normalized to "
          "Scratch)\n\n";
    renderNormalizedPanel(os, doc, idx, "instructions", nullptr,
                          nullptr);
    os << "\nThe Implicit ratio is the paper's headline instruction "
          "claim (\"40%\nfewer\" for Stash); the extra measured "
          "reduction comes from barrier and\nAddMap accounting "
          "differences.\n\n";

    os << "### 5(d) network traffic, flit crossings (normalized to "
          "Scratch)\n\n";
    renderNormalizedPanel(os, doc, idx, "flits", nullptr, nullptr);
    os << "\nPaper: On-demand Stash ≈ 0.52 × DMA (−48%); Reuse ≈ "
          "0.17 × DMA (−83%).\nThe read/write/writeback split is in "
          "every run's `flitHops` object; the\npaper's qualitative "
          "observations reproduce: in Pollution the stash\ncarries "
          "*more* write-class traffic than DMA (registration "
          "requests)\nwhile DMA only issues writebacks, and in Reuse "
          "the stash's writeback\ntraffic is zero (fully lazy, data "
          "reused in place).\n\n";
}

void
renderFig6(std::ostream &os, const JsonValue &doc)
{
    const RunIndex idx = indexRuns(doc);
    os << "## Figure 6 — applications (`stashbench fig6`)\n\n"
          "Configurations: Scratch / ScratchG / Cache / Stash / "
          "StashG; 15 GPU\nCUs + 1 CPU core; paper input sizes (LUD "
          "256², BP 32 KB, NW 512²,\nPF 10×~100K, SGEMM 128×96×160, "
          "Stencil 128×128×4 ×4, SURF 66 KB).\n\n";

    os << "### 6(a) execution time (normalized to Scratch)\n\n";
    renderPanelWithPaperAvgRow(os, doc, idx, "gpuCycles", "timeAvg");
    os << "\nPaper: StashG −10% (max −22%). ScratchG is worse than "
          "Scratch in both\n(paper +7%) for the paper's stated "
          "reason: converted reuse-free global\naccesses just add "
          "instructions. Stash→StashG improves SGEMM the most\n(the "
          "converted A/C accesses), matching the paper's \"index "
          "computations\nmove into the stash-map\" effect.\n\n";

    os << "### 6(b) dynamic energy (normalized to Scratch)\n\n";
    renderPanelWithPaperAvgRow(os, doc, idx, "energy", "energyAvg");
    os << "\nScratchG matches the paper closely; StashG's advantage "
          "is larger than\nthe paper's (vs 0.84) and Cache lands "
          "below the paper's 1.18 — see\n*Deviations*.\n\n";
}

void
renderAblations(std::ostream &os)
{
    os << "## Ablations (design choices called out by the paper)\n\n"
          "Each `stashbench ablation_*` bench emits its sweep as "
          "`BENCH_<name>.json`\n(knobs under `params`, "
          "discriminating counters under `metrics`).\nFindings from "
          "the full-scale runs:\n\n"
          "| Bench | Finding (full-scale runs) |\n|---|---|\n"
          "| `ablation_replication` | Turning off the §4.5 reuseBit "
          "optimization costs Reuse 2.5× cycles and 2.4× traffic; "
          "LUD loses its ~9k replication hits. |\n"
          "| `ablation_stash_map_size` | 16/32 entries force "
          "blocking replacement writebacks (≥96 stalls) and destroy "
          "cross-kernel reuse (Reuse: 2.6× cycles); 64 (the paper's "
          "size) suffices, 128 adds nothing. |\n"
          "| `ablation_chunk_granularity` | 64→256 B chunks change "
          "nothing when writes are dense (per-word coherence state "
          "bounds the writeback imprecision); the state-bit overhead "
          "argument of §4.4 decides. |\n"
          "| `ablation_translation_latency` | 0→40-cycle miss "
          "translation moves Implicit by 11% and Reuse by ~0% — "
          "translation is off the hit path, exactly the design's "
          "premise. |\n"
          "| `ablation_sparsity_sweep` | Stash traffic scales "
          "linearly with touched data; DMA is flat. Crossover at "
          "full density (32/32), stash = 0.02× DMA traffic at "
          "1/32. |\n\n";
}

void
renderMemBackend(std::ostream &os, const JsonValue &doc)
{
    const std::vector<std::string> workloads =
        stringList(doc, "workloads");
    const std::vector<std::string> backends =
        stringList(doc, "backends");
    const JsonValue *ratios = doc.find("stashOverScratchCycles");

    os << "## Memory-backend ablation (`stashbench memback`)\n\n"
          "The paper evaluates over a flat 168-cycle DRAM. The "
          "`--backend` flag\nswaps the backing store behind the LLC "
          "(see `src/mem/backend/`):\n`sttmram` models asymmetric "
          "read/write latency with write-pausing,\n`scmcache` a "
          "set-associative DRAM cache in front of slow SCM with\n"
          "bandwidth-aware queuing. Stash execution time over "
          "Scratch, per\nbackend:\n\n";

    os << "| |";
    for (const std::string &b : backends)
        os << " " << b << " |";
    os << "\n|---|";
    for (std::size_t i = 0; i < backends.size(); ++i)
        os << "---|";
    os << "\n";
    auto cell = [&](const std::string &b, const std::string &key) {
        const JsonValue *per = ratios ? ratios->find(b) : nullptr;
        const JsonValue *v = per ? per->find(key) : nullptr;
        return v ? fmt(v->asNumber()) : std::string("—");
    };
    for (const std::string &wl : workloads) {
        os << "| " << wl << " |";
        for (const std::string &b : backends)
            os << " " << cell(b, wl) << " |";
        os << "\n";
    }
    os << "| **average** |";
    for (const std::string &b : backends)
        os << " **" << cell(b, "average") << "** |";
    os << "\n";

    os << "\nThe stash-vs-scratch comparison is robust to the memory "
          "model: the\nstash's wins and losses track its miss/"
          "writeback stream, which the\nbackends price differently "
          "but never re-rank dramatically. Per-run\nbackend counters "
          "(write pauses, SCM spills, DRAM-cache hit rate) are\nin "
          "`BENCH_memback.json` under `metrics`.\n\n";
}

void
renderSynth(std::ostream &os, const JsonValue &doc)
{
    const RunIndex idx = indexRuns(doc);
    os << "## Synthetic traffic (`stashbench synth`)\n\n"
          "Traffic the paper never ran, generated rather than "
          "ported: a\nparameterized mix of read-only-shared / "
          "read-write-shared / private\naccesses (`SynthMix`, plus "
          "RO-heavy and RW-heavy re-parameterizations),\nCSR graph "
          "gather, attention-style gather/scatter, and a 2D "
          "stencil.\nNo hand-tuned scratchpad layout exists for "
          "these, so **Cache is the\nbaseline**: the question is "
          "what DMA staging (ScratchGD) or the stash\nbuys over "
          "just caching. Seeded generators (`DESIGN.md` §14) keep "
          "every\nrun — and every checkpoint/restore of a run — "
          "byte-deterministic.\n\n";

    os << "### Execution time (normalized to Cache)\n\n";
    renderNormalizedPanel(os, doc, idx, "gpuCycles", nullptr,
                          nullptr);
    os << "\n### Dynamic energy (normalized to Cache)\n\n";
    renderNormalizedPanel(os, doc, idx, "energy", nullptr, nullptr);
    os << "\nAt full scale the DMA-staged scratchpad is the "
          "strongest configuration\nthroughout: these generators "
          "re-touch each staged word only a few\ntimes, so bulk "
          "transfer plus cheap scratchpad access amortizes best\n"
          "(the paper's apps, with deeper reuse, are where the stash "
          "overtakes\nit). The stash beats plain caching on the "
          "access mixes and the\nirregular gather — word-granular "
          "on-demand fills avoid the cache's\nline overfetch — but "
          "gives back that margin on the dense staged\nkernels "
          "(attention, stencil), where its serial on-demand miss "
          "path\ncannot match bulk DMA and leaves it at or slightly "
          "above cache. An\nexternally recorded trace replays "
          "through the same three organizations\nwith "
          "`--trace-replay FILE` (`BENCH_replay.json`).\n\n";
}

/**
 * The scaling section renders the measured table only when the
 * explicit-only BENCH_scaling.json is present in @p dir; otherwise it
 * emits a deterministic stub, so the committed EXPERIMENTS.md (and
 * its CI drift check, which regenerates only the default benches)
 * never depends on a host-wall-clock artifact.
 */
void
renderScaling(std::ostream &os, const std::string &dir)
{
    os << "## Sharded-engine scaling (`stashbench scaling`)\n\n";

    JsonValue doc;
    bool have = false;
    {
        std::ifstream is(dir + "/BENCH_scaling.json");
        if (is) {
            std::stringstream ss;
            ss << is.rdbuf();
            std::string parse_err;
            const JsonValue *schema = nullptr;
            have = JsonValue::parse(ss.str(), doc, parse_err) &&
                   (schema = doc.find("schema")) != nullptr &&
                   schema->asString() == "stashsim-scaling-v1";
        }
    }
    if (!have) {
        os << "The scaling bench measures host wall-clock — "
              "events/sec, quanta/sec, and\nthe per-shard "
              "barrier-wait vs execute split across `--shards {1, 2, "
              "4,\n..., min(tiles, hw)}` — so its artifact is "
              "host-dependent by design and\nexcluded from the "
              "deterministic default artifact set. Run it by name "
              "on\na many-core host:\n\n"
              "```sh\nbuild/bench/stashbench --quick --out <dir> "
              "scaling\n```\n\n"
              "and re-render with `BENCH_scaling.json` present to "
              "replace this note\nwith the measured table (schema "
              "`stashsim-scaling-v1`; methodology and\nthe `--shards "
              "0` auto-tune cost model in `DESIGN.md` §16).\n\n";
        return;
    }

    os << "Measured on "
       << std::uint64_t(doc.find("hwThreads")->asNumber())
       << " hardware thread(s), " << doc.find("scale")->asString()
       << " scale (host-dependent; see `DESIGN.md` §16):\n\n"
       << "| shards | events/sec | speedup | quanta/sec | "
          "barrier-wait share |\n"
       << "|-------:|-----------:|--------:|-----------:|"
          "-------------------:|\n";
    const JsonValue *runs = doc.find("runs");
    for (std::size_t i = 0; runs && i < runs->size(); ++i) {
        const JsonValue &p = runs->at(i);
        const double exec = p.find("engine")->find("execNs")
                                ->asNumber();
        const double wait = p.find("engine")->find("barrierWaitNs")
                                ->asNumber();
        const double share =
            exec + wait > 0 ? wait / (exec + wait) : 0.0;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "| %u | %.3g | %.2f | %.3g | %.1f%% |\n",
                      unsigned(p.find("shards")->asNumber()),
                      p.find("eventsPerSec")->asNumber(),
                      p.find("speedup")->asNumber(),
                      p.find("quantaPerSec")->asNumber(),
                      100.0 * share);
        os << line;
    }
    os << "\nEvery sharded point's deterministic counters matched "
          "the serial\npoint exactly (the `validated` flags); only "
          "the wall-clock differs.\n\n";
}

/** Loads an optional BENCH_<name>.json; false (no error) if absent
 *  or not carrying @p schemaName. */
bool
loadOptionalDoc(const std::string &dir, const std::string &bench,
                const char *schemaName, JsonValue &doc)
{
    std::ifstream is(dir + "/BENCH_" + bench + ".json");
    if (!is)
        return false;
    std::stringstream ss;
    ss << is.rdbuf();
    std::string parse_err;
    const JsonValue *schema = nullptr;
    return JsonValue::parse(ss.str(), doc, parse_err) &&
           (schema = doc.find("schema")) != nullptr &&
           schema->asString() == schemaName;
}

/**
 * Sampled-simulation section: like scaling, the artifact is
 * explicit-only (`stashbench --sample` keeps farm state under --out),
 * so the committed EXPERIMENTS.md carries a stub unless
 * BENCH_sample.json is present at render time.
 */
void
renderSample(std::ostream &os, const std::string &dir)
{
    os << "## Sampled simulation (`stashbench --sample`)\n\n";

    JsonValue doc;
    if (!loadOptionalDoc(dir, "sample", "stashsim-sample-v1", doc)) {
        os << "Sampled simulation warms a workload once, snapshots "
              "at the declared\nmeasurement boundary, and fans the "
              "measured interval out from that one\ncheckpoint "
              "across a set of declared config deltas (`DESIGN.md` "
              "§17).\nThe artifact carries farm/restore provenance, "
              "so it is excluded from\nthe deterministic default "
              "set. Generate and re-render with:\n\n"
              "```sh\nbuild/bench/stashbench --quick --out <dir> "
              "--sample\n```\n\n";
        return;
    }

    const JsonValue &from = *doc.find("sampledFrom");
    os << "Workload `" << doc.find("workload")->asString() << "`, "
       << doc.find("scale")->asString()
       << " scale: every measured interval below restored the same "
          "warm\ncheckpoint `"
       << from.find("checkpoint")->asString() << "` (tick "
       << std::uint64_t(from.find("tick")->asNumber())
       << ", config hash `" << from.find("configHash")->asString()
       << "`,\nbase hash `" << from.find("baseHash")->asString()
       << "`). Deltas must declare the config group they\nchange; "
          "undeclared deltas are rejected at restore "
          "(`DESIGN.md` §17).\n\n"
       << "| delta | groups | declared | validated | gpuCycles | "
          "energy (pJ) |\n|---|---|---|---|---:|---:|\n";

    const JsonValue *deltas = doc.find("deltas");
    const JsonValue *runs = doc.find("runs");
    for (std::size_t i = 0; runs && i < runs->size(); ++i) {
        const JsonValue &run = runs->at(i);
        std::string groups = "—", declared = "yes";
        if (deltas && i < deltas->size()) {
            const JsonValue &d = deltas->at(i);
            const JsonValue *g = d.find("groups");
            std::string acc;
            for (std::size_t j = 0; g && j < g->size(); ++j)
                acc += (j ? ", " : "") + g->at(j).asString();
            if (!acc.empty())
                groups = acc;
            declared = d.find("declared")->asBool() ? "yes" : "no";
        }
        os << "| `" << run.find("delta")->asString() << "` | "
           << groups << " | " << declared << " | "
           << (run.find("validated")->asBool() ? "yes" : "**no**")
           << " | "
           << std::uint64_t(run.find("gpuCycles")->asNumber())
           << " | "
           << fmt(run.find("energy")->find("total")->asNumber(),
                  "%.0f")
           << " |\n";
    }
    os << "\nGPU-group deltas restore a pristine GPU from a CPU-only "
          "warmup, so their\nsampled intervals are byte-identical to "
          "uninterrupted twin runs\n(`--sample-unsampled`); backend/"
          "LLC deltas carry warm state across and\nare validated "
          "structurally instead "
          "(`tests/driver/sample_test.cc`).\n\n";
}

/**
 * Synthspace section: the explicit-only `stashbench synthspace`
 * bench sweeps the SynthMix ro/rw parameter space, warming each
 * point once and fanning organizations out from its checkpoint.
 */
void
renderSynthspace(std::ostream &os, const std::string &dir)
{
    os << "## Sampled SynthMix parameter space "
          "(`stashbench synthspace`)\n\n";

    JsonValue doc;
    if (!loadOptionalDoc(dir, "synthspace", "stashsim-bench-v1",
                         doc)) {
        os << "The synthspace bench maps the synthetic generator's "
              "ro/rw parameter\nspace through the sampling driver: "
              "each mix point is warmed once and the\nStash / "
              "ScratchGD organizations fan out from its checkpoint "
              "through the\nlease-based farm. Explicit-only (it "
              "keeps farm state under --out); run\nwith:\n\n"
              "```sh\nbuild/bench/stashbench --quick --out <dir> "
              "synthspace\n```\n\n";
        return;
    }

    os << "Each ro/rw mix point warmed once (Cache organization), "
          "then measured\nintervals fanned out per organization from "
          "its checkpoint. Execution\ntime over Cache:\n\n"
          "| mix point | Stash / Cache | ScratchGD / Cache |\n"
          "|---|---:|---:|\n";
    const JsonValue *stash = doc.find("stashOverCacheCycles");
    const JsonValue *gd = doc.find("scratchGDOverCacheCycles");
    auto cell = [&](const JsonValue *per, const std::string &key) {
        const JsonValue *v = per ? per->find(key) : nullptr;
        return v ? fmt(v->asNumber()) : std::string("—");
    };
    std::vector<std::string> names = stringList(doc, "workloads");
    names.push_back("average");
    for (const std::string &wl : names) {
        os << "| " << (wl == "average" ? "**average**" : wl) << " | "
           << cell(stash, wl) << " | " << cell(gd, wl) << " |\n";
    }
    os << "\nEvery row reused exactly one warm checkpoint per point "
          "(provenance in\n`BENCH_synthspace.json` under `points[]."
          "sampledFrom`).\n\n";
}

void
renderStaticTail(std::ostream &os)
{
    os << "## Deviations and their causes\n\n"
          "1. **Our microbenchmark gaps are larger than the "
          "paper's** (e.g.,\n   On-demand time 0.17 vs 0.74). The "
          "four microbenchmarks isolate one\n   mechanism each; how "
          "much that mechanism shows up in *time* depends\n   on how "
          "much other work the kernel does. Our generators carry a\n"
          "   small fixed compute per element, so the isolated "
          "mechanism\n   dominates; the paper's CUDA microbenchmarks "
          "carry full-kernel\n   overheads (launch, addressing, "
          "scheduling) that we model more\n   cheaply. The "
          "*mechanisms* are validated independently: Pollution's\n"
          "   L1 hit-rate recovery, On-demand's 1/32 transfer, "
          "Reuse's zero\n   re-transfer are all asserted by tests "
          "(`tests/workloads/\n   microbench_test.cc`).\n"
          "2. **Cache energy lands below Scratch on average** (apps "
          "vs paper\n   1.18). Two GPUWattch components we do not "
          "model push real cache\n   configurations up: DRAM/L2 "
          "energy amplification for full-line\n   fetches under "
          "thrashing, and the static/constant energy of the\n   "
          "bigger runtime (we model the latter as a per-CU-cycle "
          "term, but\n   conservatively). Where the cache genuinely "
          "thrashes (NW, STENCIL,\n   SURF) our Cache energy does "
          "exceed Scratch, as in the paper.\n"
          "3. **NW/STENCIL Stash time exceeds Scratch by ~6–15%** "
          "(paper ≈ par).\n   Both are "
          "producer-consumer-across-kernels patterns whose per-CU\n"
          "   reuse window exceeds the 16 KB stash at our "
          "thread-block geometry,\n   so the stash re-fetches on "
          "demand (serially, through the 10-cycle\n   translation) "
          "what the scratchpad bulk-preloads. The paper's block\n"
          "   shapes evidently kept more of the window resident.\n"
          "4. **DRAM energy is excluded** (as in the paper's "
          "five-way breakdown)\n   and DRAM traffic does not cross "
          "the mesh; only NoC flit crossings\n   are counted, "
          "matching Figure 5d's definition.\n\n"
          "## Protocol findings (not in the paper)\n\n"
          "Three corner cases surfaced by end-to-end validation, "
          "documented in\n`DESIGN.md` §6 and regression-tested: the "
          "stash-map tail must skip\nentries of still-resident "
          "thread blocks; store registrations must\nenter the memory "
          "system in program order with later lazy writebacks of\n"
          "the same words; and remote-request resolution cannot "
          "trust the\ndirectory's stash-map *index* once the entry "
          "has been recycled — the\nstash resolves by address (our "
          "stand-in for the paper's §4.5\nre-registration rule, "
          "without its traffic).\n";
}

} // namespace

bool
renderExperimentsMd(const std::string &dir, std::ostream &os,
                    std::string &err)
{
    JsonValue table3, fig5, fig6, memback, synth;
    if (!loadDoc(dir, "table3", table3, err) ||
        !loadDoc(dir, "fig5", fig5, err) ||
        !loadDoc(dir, "fig6", fig6, err) ||
        !loadDoc(dir, "memback", memback, err) ||
        !loadDoc(dir, "synth", synth, err))
        return false;

    os << "# EXPERIMENTS — paper vs. measured\n\n"
          "Every table and figure of the paper's evaluation (Section "
          "6), the\nbench that regenerates it, and the measured "
          "result next to the\npaper's. All values are normalized to "
          "the `Scratch` configuration\nunless noted. This file is "
          "rendered from the `BENCH_*.json` artifacts;\nregenerate "
          "everything with:\n\n"
          "```sh\ncmake -B build -S . && cmake --build build -j\n"
          "build/bench/stashbench --out .\n"
          "build/bench/stashbench --out . --render-md "
          "EXPERIMENTS.md\n```\n\n"
          "The benches are deterministic: re-running reproduces "
          "these numbers\nexactly (any `--jobs` level included).\n\n";

    const std::string scale = fig5.find("scale")->asString();
    if (scale != "full") {
        os << "> **Note**: rendered from `" << scale
           << "`-scale artifacts; the commentary\n> refers to "
              "full-scale runs.\n\n";
    }

    renderTable3(os, table3);
    renderFig5(os, fig5);
    renderFig6(os, fig6);
    renderAblations(os);
    renderMemBackend(os, memback);
    renderSynth(os, synth);
    renderScaling(os, dir);
    renderSample(os, dir);
    renderSynthspace(os, dir);
    renderStaticTail(os);
    return true;
}

} // namespace stashbench
