/**
 * @file
 * The synthetic-traffic sweep and the stashtrace replay bench.
 *
 * `synth` asks the paper's question on traffic the paper never ran:
 * the four synthetic kernel shapes (plus read-only-heavy and
 * read-write-heavy re-parameterizations of the SynthMix generator)
 * under ScratchGD, Cache, and Stash.  Cache is the baseline — the
 * synthetic kernels have no hand-tuned scratchpad layout, so the
 * interesting ratios are "what does staging through DMA or the stash
 * buy over just caching".
 *
 * runReplayBench() is the `--trace-replay FILE` frontend: the same
 * three-organization sweep over an externally recorded trace.
 */

#include "benches.hh"

#include "driver/sample.hh"
#include "sim/log.hh"
#include "workloads/synthetic/synth_workloads.hh"
#include "workloads/synthetic/trace_replay.hh"

namespace stashbench
{

namespace
{

using workloads::SynthConfig;

/** One row of the synth grid. */
struct SynthVariant
{
    std::string name;
    /** Factory workload when no knob overrides; else a make(). */
    bool viaFactory = true;
    std::string factoryName;
    unsigned roPct = 0, rwPct = 0; //!< SynthMix overrides
};

std::vector<SynthVariant>
synthGrid()
{
    std::vector<SynthVariant> grid;
    grid.push_back({"SynthMix", true, "SynthMix", 40, 30});
    grid.push_back({"SynthMix-ro70", false, "SynthMix", 70, 15});
    grid.push_back({"SynthMix-rw70", false, "SynthMix", 15, 70});
    grid.push_back({"GraphGather", true, "GraphGather", 0, 0});
    grid.push_back({"AttnScatter", true, "AttnScatter", 0, 0});
    grid.push_back({"Stencil2D", true, "Stencil2D", 0, 0});
    return grid;
}

/** doc["<label>"] = per-workload cycles(cfg)/cycles(base) + average. */
void
addCycleRatios(report::JsonValue &doc,
               const std::vector<RunRecord> &records,
               const std::vector<std::string> &names, MemOrg num,
               MemOrg den, const char *label)
{
    report::JsonValue per = report::JsonValue::object();
    double sum = 0;
    std::size_t n = 0;
    for (const std::string &name : names) {
        double top = 0, bot = 0;
        for (const RunRecord &rec : records) {
            if (rec.spec.workload != name)
                continue;
            if (rec.spec.org == num)
                top = double(rec.result.gpuCycles);
            else if (rec.spec.org == den)
                bot = double(rec.result.gpuCycles);
        }
        if (bot > 0) {
            per[name] = top / bot;
            sum += top / bot;
            ++n;
        }
    }
    if (n > 0)
        per["average"] = sum / double(n);
    doc[label] = std::move(per);
}

} // namespace

report::JsonValue
runSynth(const BenchContext &ctx)
{
    const std::vector<MemOrg> configs = {MemOrg::ScratchGD,
                                         MemOrg::Cache, MemOrg::Stash};
    const std::vector<SynthVariant> grid = synthGrid();
    std::vector<std::string> names;
    for (const SynthVariant &v : grid)
        names.push_back(v.name);

    report::JsonValue doc =
        benchDoc(ctx, "synth", findBench("synth")->title);
    doc["baseline"] = memOrgName(MemOrg::Cache);
    report::JsonValue orgArr = report::JsonValue::array();
    for (MemOrg org : configs)
        orgArr.push(memOrgName(org));
    doc["configs"] = std::move(orgArr);
    report::JsonValue nameArr = report::JsonValue::array();
    for (const std::string &n : names)
        nameArr.push(n);
    doc["workloads"] = std::move(nameArr);

    std::vector<RunSpec> specs;
    std::vector<const SynthVariant *> knob;
    for (const SynthVariant &v : grid) {
        for (MemOrg org : configs) {
            RunSpec spec;
            spec.workload = v.name;
            spec.org = org;
            spec.scale = ctx.scale;
            if (!v.viaFactory) {
                // Re-parameterized generator: the factory only knows
                // the default mix, so build through the maker — and
                // pin the application machine the factory would have
                // chosen (make-specs default to the 1-CU machine).
                const unsigned ro = v.roPct, rw = v.rwPct;
                spec.make =
                    [ro, rw](const workloads::WorkloadParams &p) {
                        SynthConfig cfg =
                            workloads::scaledSynthConfig(p);
                        cfg.mixRoPct = ro;
                        cfg.mixRwPct = rw;
                        return workloads::makeSynthMix(cfg);
                    };
                spec.config = SystemConfig::applicationDefault();
            }
            spec.labelOverride =
                v.name + "/" + memOrgName(org);
            specs.push_back(std::move(spec));
            knob.push_back(&v);
        }
    }

    std::vector<RunRecord> records =
        sweepSpecs(ctx, "synth", std::move(specs));
    report::JsonValue runs = report::JsonValue::array();
    for (std::size_t i = 0; i < records.size(); ++i) {
        report::JsonValue run = runToJson(records[i], ctx.components);
        if (knob[i]->factoryName == "SynthMix") {
            report::JsonValue params = report::JsonValue::object();
            params["roPct"] = double(knob[i]->roPct);
            params["rwPct"] = double(knob[i]->rwPct);
            run["params"] = std::move(params);
        }
        runs.push(std::move(run));
    }
    doc["runs"] = std::move(runs);

    addCycleRatios(doc, records, names, MemOrg::Stash, MemOrg::Cache,
                   "stashOverCacheCycles");
    addCycleRatios(doc, records, names, MemOrg::ScratchGD,
                   MemOrg::Cache, "scratchGDOverCacheCycles");
    return doc;
}

/**
 * The sampled parameter-space sweep: five points along the SynthMix
 * read-only/read-write axis, each warmed ONCE under the Cache
 * baseline and fanned out across the organization deltas from that
 * single checkpoint (src/driver/sample.hh).  A classic sweep pays
 * 15 warmups for this grid; the sampled one pays 5 — and the whole
 * campaign is farm-dispatched, so any number of stashbench processes
 * pointed at the same state dir drain it together.
 */
report::JsonValue
runSynthspace(const BenchContext &ctx)
{
    struct Point
    {
        const char *name;
        unsigned ro, rw;
    };
    const std::vector<Point> points = {
        {"SynthMix-ro70", 70, 15}, {"SynthMix-ro55", 55, 22},
        {"SynthMix-mix", 40, 30},  {"SynthMix-rw55", 22, 55},
        {"SynthMix-rw70", 15, 70},
    };
    // identity keeps the Cache baseline; the org deltas are
    // gpu-group, so every interval restores byte-exactly against its
    // unsampled twin (tests/driver/sample_test.cc).
    const char *deltaList = "identity,org:ScratchGD,org:Stash";

    report::JsonValue doc = benchDoc(ctx, "synthspace",
                                     findBench("synthspace")->title);
    doc["baseline"] = memOrgName(MemOrg::Cache);
    report::JsonValue nameArr = report::JsonValue::array();
    std::vector<std::string> names;
    for (const Point &p : points) {
        nameArr.push(p.name);
        names.push_back(p.name);
    }
    doc["workloads"] = std::move(nameArr);
    doc["deltas"] = deltaList;

    const std::string stateRoot =
        (ctx.stateDir.empty() ? ctx.outDir + "/samplestate"
                              : ctx.stateDir) +
        "/synthspace";

    std::vector<RunRecord> all;
    report::JsonValue pointArr = report::JsonValue::array();
    report::JsonValue runs = report::JsonValue::array();
    for (const Point &p : points) {
        if (ctx.stop && ctx.stop->load(std::memory_order_relaxed))
            break;
        SampleRequest req;
        req.workload = p.name;
        req.org = MemOrg::Cache;
        req.scale = ctx.scale;
        req.config = SystemConfig::applicationDefault();
        const unsigned ro = p.ro, rw = p.rw;
        req.make = [ro, rw](const workloads::WorkloadParams &wp) {
            SynthConfig cfg = workloads::scaledSynthConfig(wp);
            cfg.mixRoPct = ro;
            cfg.mixRwPct = rw;
            return workloads::makeSynthMix(cfg);
        };
        std::string err;
        if (!parseSampleDeltas(deltaList, req.deltas, err))
            fatal("synthspace: ", err);
        req.stateDir = stateRoot;
        req.threads = ctx.jobs;
        req.shardsPerRun = ctx.shards;
        req.workerId = ctx.workerId;
        req.leaseTtlMs = ctx.leaseTtlMs;
        req.maxAttempts = ctx.maxAttempts;
        req.checkpointEveryTicks = Tick(ctx.checkpointEvery);
        req.progress = ctx.progress;
        req.stop = ctx.stop;

        SampleOutcome out = runSample(req);
        if (ctx.simperf) {
            ctx.simperf->add("synthspace", out.runs);
            ctx.simperf->recovery.add(out.counters);
        }
        report::JsonValue pt = report::JsonValue::object();
        pt["workload"] = p.name;
        report::JsonValue params = report::JsonValue::object();
        params["roPct"] = double(p.ro);
        params["rwPct"] = double(p.rw);
        pt["params"] = std::move(params);
        pt["warmValidated"] = out.warm.result.validated;
        report::JsonValue prov = report::JsonValue::object();
        prov["checkpoint"] = out.sampledFrom.checkpoint;
        prov["tick"] = double(out.sampledFrom.tick);
        prov["phaseCursor"] = double(out.sampledFrom.phaseCursor);
        pt["sampledFrom"] = std::move(prov);
        pointArr.push(std::move(pt));

        for (std::size_t i = 0; i < out.runs.size(); ++i) {
            report::JsonValue run =
                runToJson(out.runs[i], ctx.components);
            run["delta"] = req.deltas[i].name;
            report::JsonValue rp = report::JsonValue::object();
            rp["roPct"] = double(p.ro);
            rp["rwPct"] = double(p.rw);
            run["params"] = std::move(rp);
            runs.push(std::move(run));
            all.push_back(out.runs[i]);
        }
    }
    doc["points"] = std::move(pointArr);
    doc["runs"] = std::move(runs);
    addCycleRatios(doc, all, names, MemOrg::Stash, MemOrg::Cache,
                   "stashOverCacheCycles");
    addCycleRatios(doc, all, names, MemOrg::ScratchGD, MemOrg::Cache,
                   "scratchGDOverCacheCycles");
    return doc;
}

report::JsonValue
runReplayBench(const BenchContext &ctx,
               const workloads::TraceData &trace,
               const std::string &source)
{
    const std::vector<MemOrg> configs = {MemOrg::ScratchGD,
                                         MemOrg::Cache, MemOrg::Stash};
    report::JsonValue doc =
        benchDoc(ctx, "replay", "stashtrace replay");
    doc["baseline"] = memOrgName(MemOrg::Cache);
    report::JsonValue orgArr = report::JsonValue::array();
    for (MemOrg org : configs)
        orgArr.push(memOrgName(org));
    doc["configs"] = std::move(orgArr);
    report::JsonValue nameArr = report::JsonValue::array();
    nameArr.push("TraceReplay");
    doc["workloads"] = std::move(nameArr);

    report::JsonValue meta = report::JsonValue::object();
    meta["source"] = source;
    meta["records"] = double(trace.records());
    meta["phases"] = double(trace.phases.size());
    meta["hash"] = double(workloads::traceHash(trace) & 0xffffffffu);
    doc["trace"] = std::move(meta);

    std::vector<RunSpec> specs;
    for (MemOrg org : configs) {
        RunSpec spec;
        spec.workload = "TraceReplay";
        spec.org = org;
        spec.scale = ctx.scale;
        spec.make = [&trace](const workloads::WorkloadParams &p) {
            return workloads::makeTraceReplay(trace, p.org);
        };
        spec.config = SystemConfig::applicationDefault();
        spec.labelOverride =
            std::string("TraceReplay/") + memOrgName(org);
        specs.push_back(std::move(spec));
    }

    std::vector<RunRecord> records =
        sweepSpecs(ctx, "replay", std::move(specs));
    report::JsonValue runs = report::JsonValue::array();
    for (const RunRecord &rec : records)
        runs.push(runToJson(rec, ctx.components));
    doc["runs"] = std::move(runs);
    addCycleRatios(doc, records, {"TraceReplay"}, MemOrg::Stash,
                   MemOrg::Cache, "stashOverCacheCycles");
    addCycleRatios(doc, records, {"TraceReplay"}, MemOrg::ScratchGD,
                   MemOrg::Cache, "scratchGDOverCacheCycles");
    return doc;
}

} // namespace stashbench
