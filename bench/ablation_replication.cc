/**
 * @file
 * Ablation: the Section 4.5 data-replication (reuseBit)
 * optimization, on versus off.
 *
 * Replication pays off when several mappings of the same tile are
 * live in one stash — Reuse's repeated kernels are the paper's
 * motivating case, and LUD's shared diagonal/strip tiles are the
 * application case.  With the optimization off, every such miss
 * goes to the memory system instead of a local copy.
 */

#include "bench_util.hh"

using namespace benchutil;

int
main(int argc, char **argv)
{
    const bool quick = quickMode(argc, argv);
    std::printf("Ablation: stash data-replication optimization "
                "(Section 4.5)\n\n");
    std::printf("%-10s %-6s %12s %12s %14s %14s\n", "workload", "repl",
                "cycles", "energy(nJ)", "repl. hits", "flit-hops");

    auto run_micro = [&](const char *name, bool opt) {
        SystemConfig cfg = SystemConfig::microbenchmarkDefault();
        cfg.stashReplicationOpt = opt;
        return runMicrobenchmark(name, MemOrg::Stash, quick, &cfg);
    };
    auto run_app = [&](const char *name, bool opt) {
        SystemConfig cfg = SystemConfig::applicationDefault();
        cfg.stashReplicationOpt = opt;
        return runApplication(name, MemOrg::Stash, quick, &cfg);
    };

    for (const char *name : {"Reuse", "On-demand"}) {
        for (bool opt : {true, false}) {
            RunResult r = run_micro(name, opt);
            std::printf("%-10s %-6s %12llu %12.0f %14llu %14llu\n",
                        name, opt ? "on" : "off",
                        (unsigned long long)r.gpuCycles,
                        r.energy.total() / 1e3,
                        (unsigned long long)
                            r.stats.stash.replicationHits,
                        (unsigned long long)
                            r.stats.noc.totalFlitHops());
        }
    }
    for (const char *name : {"LUD", "SGEMM"}) {
        for (bool opt : {true, false}) {
            RunResult r = run_app(name, opt);
            std::printf("%-10s %-6s %12llu %12.0f %14llu %14llu\n",
                        name, opt ? "on" : "off",
                        (unsigned long long)r.gpuCycles,
                        r.energy.total() / 1e3,
                        (unsigned long long)
                            r.stats.stash.replicationHits,
                        (unsigned long long)
                            r.stats.noc.totalFlitHops());
        }
    }
    return 0;
}
