/**
 * @file
 * Reproduces Table 3: per-access energy of the hardware units.
 *
 * The local-structure energies are the paper's published values,
 * used directly by our energy model; the derived ratios the paper
 * highlights in Section 6.1 are computed and checked here:
 *   - scratchpad access energy is 29% of an L1 hit,
 *   - stash hit energy is comparable to the scratchpad,
 *   - stash miss energy is 41% of an L1 miss.
 */

#include <cstdio>

#include "energy/energy_model.hh"

int
main()
{
    using namespace stashsim;
    const EnergyParams p;

    std::printf("Table 3: per-access energy of the simulated "
                "hardware units\n\n");
    std::printf("%-16s %12s %12s\n", "Hardware Unit", "Hit Energy",
                "Miss Energy");
    std::printf("%-16s %9.1f pJ %12s\n", "Scratchpad",
                p.scratchpadAccess, "-");
    std::printf("%-16s %9.1f pJ %9.1f pJ\n", "Stash", p.stashHit,
                p.stashMiss);
    std::printf("%-16s %9.1f pJ %9.1f pJ\n", "L1 cache", p.l1Hit,
                p.l1Miss);
    std::printf("%-16s %9.1f pJ %9.1f pJ\n", "TLB access",
                p.tlbAccess, p.tlbAccess);

    std::printf("\nDerived ratios (paper Section 6.1):\n");
    std::printf("  scratchpad / L1 hit (+TLB)   = %4.0f%%  "
                "(paper: 29%%)\n",
                100.0 * p.scratchpadAccess / (p.l1Hit + p.tlbAccess));
    std::printf("  stash hit / scratchpad       = %4.0f%%  "
                "(paper: comparable)\n",
                100.0 * p.stashHit / p.scratchpadAccess);
    std::printf("  stash miss / L1 miss (+TLB)  = %4.0f%%  "
                "(paper: 41%%)\n",
                100.0 * p.stashMiss / (p.l1Miss + p.tlbAccess));

    std::printf("\nModel-calibrated constants (not in Table 3; "
                "identical across configurations):\n");
    std::printf("  GPU core+ per warp instruction: %6.1f pJ\n",
                p.gpuCoreInstr);
    std::printf("  L2 bank access:                 %6.1f pJ\n",
                p.l2Access);
    std::printf("  NoC flit-hop:                   %6.1f pJ\n",
                p.nocFlitHop);
    return 0;
}
