# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_coherence[1]_include.cmake")
include("/root/repo/build/tests/test_stash[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
