file(REMOVE_RECURSE
  "CMakeFiles/test_stash.dir/core/stash_map_test.cc.o"
  "CMakeFiles/test_stash.dir/core/stash_map_test.cc.o.d"
  "CMakeFiles/test_stash.dir/core/stash_test.cc.o"
  "CMakeFiles/test_stash.dir/core/stash_test.cc.o.d"
  "CMakeFiles/test_stash.dir/core/vp_map_test.cc.o"
  "CMakeFiles/test_stash.dir/core/vp_map_test.cc.o.d"
  "test_stash"
  "test_stash.pdb"
  "test_stash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
