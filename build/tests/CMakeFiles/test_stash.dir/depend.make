# Empty dependencies file for test_stash.
# This may be replaced when dependencies are built.
