
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/dma_scratch_test.cc" "tests/CMakeFiles/test_mem.dir/mem/dma_scratch_test.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/dma_scratch_test.cc.o.d"
  "/root/repo/tests/mem/main_memory_test.cc" "tests/CMakeFiles/test_mem.dir/mem/main_memory_test.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/main_memory_test.cc.o.d"
  "/root/repo/tests/mem/msg_test.cc" "tests/CMakeFiles/test_mem.dir/mem/msg_test.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/msg_test.cc.o.d"
  "/root/repo/tests/mem/page_table_test.cc" "tests/CMakeFiles/test_mem.dir/mem/page_table_test.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/page_table_test.cc.o.d"
  "/root/repo/tests/mem/tile_test.cc" "tests/CMakeFiles/test_mem.dir/mem/tile_test.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/tile_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stashsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
