file(REMOVE_RECURSE
  "CMakeFiles/ablation_sparsity_sweep.dir/ablation_sparsity_sweep.cc.o"
  "CMakeFiles/ablation_sparsity_sweep.dir/ablation_sparsity_sweep.cc.o.d"
  "ablation_sparsity_sweep"
  "ablation_sparsity_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sparsity_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
