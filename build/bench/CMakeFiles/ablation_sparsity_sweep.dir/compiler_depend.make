# Empty compiler generated dependencies file for ablation_sparsity_sweep.
# This may be replaced when dependencies are built.
