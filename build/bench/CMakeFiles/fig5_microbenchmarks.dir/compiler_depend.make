# Empty compiler generated dependencies file for fig5_microbenchmarks.
# This may be replaced when dependencies are built.
