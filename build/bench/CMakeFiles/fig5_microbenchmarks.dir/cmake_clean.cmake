file(REMOVE_RECURSE
  "CMakeFiles/fig5_microbenchmarks.dir/fig5_microbenchmarks.cc.o"
  "CMakeFiles/fig5_microbenchmarks.dir/fig5_microbenchmarks.cc.o.d"
  "fig5_microbenchmarks"
  "fig5_microbenchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_microbenchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
