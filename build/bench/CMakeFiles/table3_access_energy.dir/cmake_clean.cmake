file(REMOVE_RECURSE
  "CMakeFiles/table3_access_energy.dir/table3_access_energy.cc.o"
  "CMakeFiles/table3_access_energy.dir/table3_access_energy.cc.o.d"
  "table3_access_energy"
  "table3_access_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_access_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
