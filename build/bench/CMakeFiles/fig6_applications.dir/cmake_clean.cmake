file(REMOVE_RECURSE
  "CMakeFiles/fig6_applications.dir/fig6_applications.cc.o"
  "CMakeFiles/fig6_applications.dir/fig6_applications.cc.o.d"
  "fig6_applications"
  "fig6_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
