# Empty dependencies file for fig6_applications.
# This may be replaced when dependencies are built.
