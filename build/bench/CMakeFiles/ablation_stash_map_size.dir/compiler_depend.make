# Empty compiler generated dependencies file for ablation_stash_map_size.
# This may be replaced when dependencies are built.
