file(REMOVE_RECURSE
  "CMakeFiles/ablation_stash_map_size.dir/ablation_stash_map_size.cc.o"
  "CMakeFiles/ablation_stash_map_size.dir/ablation_stash_map_size.cc.o.d"
  "ablation_stash_map_size"
  "ablation_stash_map_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stash_map_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
