# Empty dependencies file for ablation_translation_latency.
# This may be replaced when dependencies are built.
