file(REMOVE_RECURSE
  "CMakeFiles/ablation_translation_latency.dir/ablation_translation_latency.cc.o"
  "CMakeFiles/ablation_translation_latency.dir/ablation_translation_latency.cc.o.d"
  "ablation_translation_latency"
  "ablation_translation_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_translation_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
