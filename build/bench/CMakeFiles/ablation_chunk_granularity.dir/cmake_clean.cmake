file(REMOVE_RECURSE
  "CMakeFiles/ablation_chunk_granularity.dir/ablation_chunk_granularity.cc.o"
  "CMakeFiles/ablation_chunk_granularity.dir/ablation_chunk_granularity.cc.o.d"
  "ablation_chunk_granularity"
  "ablation_chunk_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chunk_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
