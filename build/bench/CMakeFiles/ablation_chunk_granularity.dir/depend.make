# Empty dependencies file for ablation_chunk_granularity.
# This may be replaced when dependencies are built.
