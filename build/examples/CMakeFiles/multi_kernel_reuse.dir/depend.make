# Empty dependencies file for multi_kernel_reuse.
# This may be replaced when dependencies are built.
