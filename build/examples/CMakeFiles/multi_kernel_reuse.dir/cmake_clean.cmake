file(REMOVE_RECURSE
  "CMakeFiles/multi_kernel_reuse.dir/multi_kernel_reuse.cpp.o"
  "CMakeFiles/multi_kernel_reuse.dir/multi_kernel_reuse.cpp.o.d"
  "multi_kernel_reuse"
  "multi_kernel_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_kernel_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
