file(REMOVE_RECURSE
  "CMakeFiles/sparse_on_demand.dir/sparse_on_demand.cpp.o"
  "CMakeFiles/sparse_on_demand.dir/sparse_on_demand.cpp.o.d"
  "sparse_on_demand"
  "sparse_on_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_on_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
