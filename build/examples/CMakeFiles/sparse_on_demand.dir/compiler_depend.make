# Empty compiler generated dependencies file for sparse_on_demand.
# This may be replaced when dependencies are built.
