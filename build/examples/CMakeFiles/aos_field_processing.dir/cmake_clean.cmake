file(REMOVE_RECURSE
  "CMakeFiles/aos_field_processing.dir/aos_field_processing.cpp.o"
  "CMakeFiles/aos_field_processing.dir/aos_field_processing.cpp.o.d"
  "aos_field_processing"
  "aos_field_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_field_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
