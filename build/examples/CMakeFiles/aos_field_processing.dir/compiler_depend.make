# Empty compiler generated dependencies file for aos_field_processing.
# This may be replaced when dependencies are built.
