
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/system_config.cc" "src/CMakeFiles/stashsim.dir/config/system_config.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/config/system_config.cc.o.d"
  "/root/repo/src/core/stash.cc" "src/CMakeFiles/stashsim.dir/core/stash.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/core/stash.cc.o.d"
  "/root/repo/src/core/vp_map.cc" "src/CMakeFiles/stashsim.dir/core/vp_map.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/core/vp_map.cc.o.d"
  "/root/repo/src/cpu/cpu_core.cc" "src/CMakeFiles/stashsim.dir/cpu/cpu_core.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/cpu/cpu_core.cc.o.d"
  "/root/repo/src/driver/system.cc" "src/CMakeFiles/stashsim.dir/driver/system.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/driver/system.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/stashsim.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/gpu/compute_unit.cc" "src/CMakeFiles/stashsim.dir/gpu/compute_unit.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/gpu/compute_unit.cc.o.d"
  "/root/repo/src/gpu/kernel.cc" "src/CMakeFiles/stashsim.dir/gpu/kernel.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/gpu/kernel.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/stashsim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/coherence/denovo.cc" "src/CMakeFiles/stashsim.dir/mem/coherence/denovo.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/mem/coherence/denovo.cc.o.d"
  "/root/repo/src/mem/dma_engine.cc" "src/CMakeFiles/stashsim.dir/mem/dma_engine.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/mem/dma_engine.cc.o.d"
  "/root/repo/src/mem/fabric.cc" "src/CMakeFiles/stashsim.dir/mem/fabric.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/mem/fabric.cc.o.d"
  "/root/repo/src/mem/llc.cc" "src/CMakeFiles/stashsim.dir/mem/llc.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/mem/llc.cc.o.d"
  "/root/repo/src/mem/main_memory.cc" "src/CMakeFiles/stashsim.dir/mem/main_memory.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/mem/main_memory.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/CMakeFiles/stashsim.dir/mem/page_table.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/mem/page_table.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/CMakeFiles/stashsim.dir/mem/tlb.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/mem/tlb.cc.o.d"
  "/root/repo/src/noc/mesh.cc" "src/CMakeFiles/stashsim.dir/noc/mesh.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/noc/mesh.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/CMakeFiles/stashsim.dir/noc/router.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/noc/router.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/stashsim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/log.cc" "src/CMakeFiles/stashsim.dir/sim/log.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/sim/log.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/stashsim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/sim/stats.cc.o.d"
  "/root/repo/src/workloads/apps.cc" "src/CMakeFiles/stashsim.dir/workloads/apps.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/workloads/apps.cc.o.d"
  "/root/repo/src/workloads/kernel_builder.cc" "src/CMakeFiles/stashsim.dir/workloads/kernel_builder.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/workloads/kernel_builder.cc.o.d"
  "/root/repo/src/workloads/microbench.cc" "src/CMakeFiles/stashsim.dir/workloads/microbench.cc.o" "gcc" "src/CMakeFiles/stashsim.dir/workloads/microbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
