# Empty dependencies file for stashsim.
# This may be replaced when dependencies are built.
