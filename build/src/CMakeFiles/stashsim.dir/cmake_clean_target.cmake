file(REMOVE_RECURSE
  "libstashsim.a"
)
